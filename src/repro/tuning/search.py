"""Empirical tuning driver (paper §2.1).

Generates each candidate configuration, assembles it natively, validates
it against the numpy reference on a small problem (a wrong kernel must
never win the search), measures it with min-of-batches timing, and keeps
the fastest.  Candidates that fail generation (e.g. register-file
overflow at extreme unroll factors) are skipped and recorded.

Two layers make repeated searches cheap:

- **parallel preparation** — with ``jobs > 1`` the generate+assemble work
  fans out across a thread pool (assembly shells out to the toolchain, so
  workers overlap cleanly); *timing stays serialized on the main thread*
  so measurements are never co-scheduled with builds or each other.
- **persistent measurements** — each successful trial is filed in the
  kernel cache keyed by the generated kernel's content hash, so
  re-tuning in a fresh process replays prior measurements instead of
  rebuilding and re-timing candidates that have not changed.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..backend.cache import get_cache
from ..backend.runner import NativeKernel, load_kernel
from ..backend.timer import measure
from ..core.framework import Augem, GeneratedKernel, stable_kernel_name
from ..isa.arch import ArchSpec, detect_host
from .space import Candidate, candidates_for

#: bump when any benchmark workload below changes shape/size, so stale
#: persisted measurements are not replayed against a different problem
_WORKLOAD_VERSION = 1


@dataclass
class TrialResult:
    candidate: Candidate
    gflops: float  # -1.0 when the candidate failed
    error: Optional[str] = None
    cached: bool = False  # replayed from a persisted measurement


@dataclass
class TuningResult:
    kernel: str
    arch: ArchSpec
    best: Candidate
    best_gflops: float
    trials: List[TrialResult] = field(default_factory=list)

    def report(self) -> str:
        lines = [f"tuning {self.kernel} on {self.arch}:"]
        for t in sorted(self.trials, key=lambda t: -t.gflops):
            status = f"{t.gflops:7.2f} GF" if t.gflops >= 0 else f"failed: {t.error}"
            marker = " <== best" if t.candidate is self.best else ""
            cached = " (cached)" if t.cached else ""
            lines.append(
                f"  {t.candidate.describe():55s} {status}{cached}{marker}")
        return "\n".join(lines)


def _gemm_workload(rng):
    mc, nc, kc = 64, 64, 256
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    # C += A@B accumulates in place across timed calls by design (that is
    # the kernel's contract). The tile is allocated fresh per candidate and
    # grows only linearly in the call count, so it can neither overflow nor
    # leak into another candidate's validation buffers (unlike the shared
    # vector-workload buffers, which timing must never mutate).
    c = np.zeros(mc * nc)
    flops = 2.0 * mc * nc * kc

    def run(k):
        k(mc, nc, kc, a, b, c, mc)

    return run, flops


def _validate_gemm(kernel, layout: str, rng) -> bool:
    import math

    from ..blas.gemm import kernel_multiples

    mu, nu, ku = kernel_multiples(kernel.generated)
    mc = 2 * math.lcm(mu, 4)
    nc = 2 * math.lcm(nu, 2)
    kc = 2 * math.lcm(ku, 8)
    ldc = mc
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    c = np.zeros(ldc * nc)
    ref = c.copy()
    kernel(mc, nc, kc, a, b, c, ldc)
    am = a.reshape(kc, mc)
    for j in range(nc):
        col = (b.reshape(nc, kc)[j, :] if layout == "dup"
               else b.reshape(kc, nc)[:, j])
        for i in range(mc):
            ref[j * ldc + i] += am[:, i] @ col
    return np.allclose(c, ref)


@dataclass
class _Prepared:
    """One candidate after the (possibly parallel) generate+assemble phase."""

    candidate: Candidate
    generated: Optional[GeneratedKernel] = None
    native: Optional[NativeKernel] = None
    cached_gflops: Optional[float] = None
    error: Optional[str] = None


def _measurement_key(kernel_key: str, arch: ArchSpec,
                     gk: GeneratedKernel, batches: int) -> str:
    """Content address of one (kernel, arch, candidate, workload) trial."""
    return hashlib.sha256(
        f"tune\x1f{kernel_key}\x1f{arch.name}\x1f{gk.content_hash}"
        f"\x1fbatches={batches}\x1fwl={_WORKLOAD_VERSION}".encode()
    ).hexdigest()[:24]


def _prepare(aug: Augem, kernel: str, kernel_key: str, arch: ArchSpec,
             cand: Candidate, batches: int, reuse: bool) -> _Prepared:
    """Generate and assemble one candidate (thread-pool friendly).

    Generation is pure Python; assembly shells out to the toolchain (and
    through the persistent compile cache). If a persisted measurement for
    this exact generated kernel exists, assembly is skipped entirely —
    the warm path touches no toolchain at all.
    """
    cache = get_cache()
    try:
        name = stable_kernel_name(kernel_key, arch, cand.config,
                                  cand.strategy)
        gk = aug.generate_named(kernel_key, config=cand.config,
                                strategy=cand.strategy, name=name)
        if reuse:
            record = cache.load_tuning(_measurement_key(kernel_key, arch,
                                                        gk, batches))
            if record is not None:
                return _Prepared(cand, generated=gk,
                                 cached_gflops=float(record["gflops"]))
        native = load_kernel(kernel_key, gk)
        return _Prepared(cand, generated=gk, native=native)
    except Exception as exc:  # noqa: BLE001 - record and move on
        return _Prepared(cand, error=str(exc)[:120])


def tune_kernel(kernel: str, arch: Optional[ArchSpec] = None,
                layout: str = "dup",
                candidates: Optional[List[Candidate]] = None,
                batches: int = 5,
                jobs: int = 1,
                reuse: bool = True,
                verbose: bool = False) -> TuningResult:
    """Exhaustively evaluate the candidate space; return the winner.

    :param jobs: worker threads for the generate+assemble phase. Timing is
        always serialized on the calling thread regardless of ``jobs``, so
        parallelism never perturbs the measurements.
    :param reuse: replay persisted measurements for unchanged candidates
        (set ``False`` to force fresh timing of every candidate).
    """
    arch = arch or detect_host()
    aug = Augem(arch=arch)
    rng = np.random.default_rng(42)
    kernel_key = "gemm_shuf" if (kernel == "gemm" and layout == "shuf") else kernel
    if candidates is None:
        candidates = candidates_for(kernel, arch,
                                    **({"layout": layout} if kernel == "gemm" else {}))

    n_vec = 1 << 16  # vector-kernel benchmark length (L2 resident)
    x = rng.standard_normal(n_vec)
    y = rng.standard_normal(n_vec)

    # phase 1: generate + assemble every candidate (parallel when jobs > 1)
    if jobs > 1 and len(candidates) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            prepared = list(pool.map(
                lambda c: _prepare(aug, kernel, kernel_key, arch, c,
                                   batches, reuse),
                candidates))
    else:
        prepared = [_prepare(aug, kernel, kernel_key, arch, c, batches, reuse)
                    for c in candidates]

    # phase 2: validate + time, strictly serial on this thread
    cache = get_cache()
    trials: List[TrialResult] = []
    best: Optional[Candidate] = None
    best_gf = -1.0
    for prep in prepared:
        cand = prep.candidate
        try:
            if prep.error is not None:
                raise RuntimeError(prep.error)
            if prep.cached_gflops is not None:
                trials.append(TrialResult(cand, prep.cached_gflops,
                                          cached=True))
            else:
                native = prep.native
                if kernel == "gemm":
                    if not _validate_gemm(native, layout, rng):
                        raise RuntimeError("validation failed")
                    run, flops = _gemm_workload(rng)
                    m = measure(lambda: run(native), batches=batches)
                elif kernel == "gemv":
                    mdim = 1 << 10
                    ncols = 64
                    a = rng.standard_normal(ncols * mdim)
                    yv = np.zeros(mdim)
                    xv = rng.standard_normal(ncols)
                    ref = a.reshape(ncols, mdim).T @ xv
                    native(mdim, ncols, a, mdim, xv, yv)
                    if not np.allclose(yv, ref):
                        raise RuntimeError("validation failed")
                    flops = 2.0 * mdim * ncols
                    # time against the per-candidate accumulator, not a
                    # buffer any later validation compares against
                    m = measure(lambda: native(mdim, ncols, a, mdim, xv, yv),
                                batches=batches)
                elif kernel == "axpy":
                    yv = y.copy()
                    native(n_vec, 1.5, x, yv)
                    if not np.allclose(yv, y + 1.5 * x):
                        raise RuntimeError("validation failed")
                    flops = 2.0 * n_vec
                    # y += alpha*x mutates in place: timing thousands of
                    # calls against the shared ``y`` used to blow up the
                    # very vector later candidates validate against — time
                    # against a scratch copy instead
                    yt = y.copy()
                    m = measure(lambda: native(n_vec, 1.5, x, yt),
                                batches=batches)
                elif kernel == "dot":
                    r = native(n_vec, x, y)
                    if not np.isclose(r, x @ y):
                        raise RuntimeError("validation failed")
                    flops = 2.0 * n_vec
                    m = measure(lambda: native(n_vec, x, y), batches=batches)
                else:
                    raise KeyError(f"unknown kernel {kernel!r}")
                gf = m.gflops(flops)
                trials.append(TrialResult(cand, gf))
                if reuse and prep.generated is not None:
                    cache.store_tuning(
                        _measurement_key(kernel_key, arch, prep.generated,
                                         batches),
                        {"kernel": kernel_key, "arch": arch.name,
                         "candidate": cand.describe(), "gflops": gf,
                         "best_seconds": m.best, "batches": batches})
            if trials[-1].gflops > best_gf:
                best, best_gf = cand, trials[-1].gflops
        except Exception as exc:  # noqa: BLE001 - record and move on
            trials.append(TrialResult(cand, -1.0, error=str(exc)[:120]))
        if verbose:
            print(trials[-1].candidate.describe(), "->",
                  f"{trials[-1].gflops:.2f}" if trials[-1].gflops >= 0
                  else trials[-1].error)
    if best is None:
        raise RuntimeError(f"every candidate failed for kernel {kernel!r}")
    return TuningResult(kernel=kernel, arch=arch, best=best,
                        best_gflops=best_gf, trials=trials)
