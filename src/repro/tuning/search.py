"""Empirical tuning driver (paper §2.1).

Generates each candidate configuration, assembles it natively, validates
it against the numpy reference on a small problem (a wrong kernel must
never win the search), measures it with min-of-batches timing, and keeps
the fastest.  Candidates that fail generation (e.g. register-file
overflow at extreme unroll factors) are skipped and recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..backend.runner import load_kernel
from ..backend.timer import measure
from ..core.framework import Augem
from ..isa.arch import ArchSpec, detect_host
from .space import Candidate, candidates_for


@dataclass
class TrialResult:
    candidate: Candidate
    gflops: float  # -1.0 when the candidate failed
    error: Optional[str] = None


@dataclass
class TuningResult:
    kernel: str
    arch: ArchSpec
    best: Candidate
    best_gflops: float
    trials: List[TrialResult] = field(default_factory=list)

    def report(self) -> str:
        lines = [f"tuning {self.kernel} on {self.arch}:"]
        for t in sorted(self.trials, key=lambda t: -t.gflops):
            status = f"{t.gflops:7.2f} GF" if t.gflops >= 0 else f"failed: {t.error}"
            marker = " <== best" if t.candidate is self.best else ""
            lines.append(f"  {t.candidate.describe():55s} {status}{marker}")
        return "\n".join(lines)


def _gemm_workload(rng):
    mc, nc, kc = 64, 64, 256
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    c = np.zeros(mc * nc)
    flops = 2.0 * mc * nc * kc

    def run(k):
        k(mc, nc, kc, a, b, c, mc)

    def run_shuf(k):
        k(mc, nc, kc, a, b, c, mc)

    return run, flops


def _validate_gemm(kernel, layout: str, rng) -> bool:
    import math

    from ..blas.gemm import kernel_multiples

    mu, nu, ku = kernel_multiples(kernel.generated)
    mc = 2 * math.lcm(mu, 4)
    nc = 2 * math.lcm(nu, 2)
    kc = 2 * math.lcm(ku, 8)
    ldc = mc
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    c = np.zeros(ldc * nc)
    ref = c.copy()
    kernel(mc, nc, kc, a, b, c, ldc)
    am = a.reshape(kc, mc)
    for j in range(nc):
        col = (b.reshape(nc, kc)[j, :] if layout == "dup"
               else b.reshape(kc, nc)[:, j])
        for i in range(mc):
            ref[j * ldc + i] += am[:, i] @ col
    return np.allclose(c, ref)


def tune_kernel(kernel: str, arch: Optional[ArchSpec] = None,
                layout: str = "dup",
                candidates: Optional[List[Candidate]] = None,
                batches: int = 5,
                verbose: bool = False) -> TuningResult:
    """Exhaustively evaluate the candidate space; return the winner."""
    arch = arch or detect_host()
    aug = Augem(arch=arch)
    rng = np.random.default_rng(42)
    kernel_key = "gemm_shuf" if (kernel == "gemm" and layout == "shuf") else kernel
    if candidates is None:
        candidates = candidates_for(kernel, arch,
                                    **({"layout": layout} if kernel == "gemm" else {}))

    n_vec = 1 << 16  # vector-kernel benchmark length (L2 resident)
    x = rng.standard_normal(n_vec)
    y = rng.standard_normal(n_vec)

    trials: List[TrialResult] = []
    best: Optional[Candidate] = None
    best_gf = -1.0
    for idx, cand in enumerate(candidates):
        try:
            gk = aug.generate_named(kernel_key, config=cand.config,
                                    strategy=cand.strategy,
                                    name=f"tune_{kernel}_{arch.name}_{idx}")
            native = load_kernel(kernel_key, gk)
            if kernel == "gemm":
                if not _validate_gemm(native, layout, rng):
                    raise RuntimeError("validation failed")
                run, flops = _gemm_workload(rng)
                m = measure(lambda: run(native), batches=batches)
            elif kernel == "gemv":
                mdim = 1 << 10
                ncols = 64
                a = rng.standard_normal(ncols * mdim)
                yv = np.zeros(mdim)
                xv = rng.standard_normal(ncols)
                ref = a.reshape(ncols, mdim).T @ xv
                native(mdim, ncols, a, mdim, xv, yv)
                if not np.allclose(yv, ref):
                    raise RuntimeError("validation failed")
                flops = 2.0 * mdim * ncols
                m = measure(lambda: native(mdim, ncols, a, mdim, xv, yv),
                            batches=batches)
            elif kernel == "axpy":
                yv = y.copy()
                native(n_vec, 1.5, x, yv)
                if not np.allclose(yv, y + 1.5 * x):
                    raise RuntimeError("validation failed")
                flops = 2.0 * n_vec
                m = measure(lambda: native(n_vec, 1.5, x, y), batches=batches)
            elif kernel == "dot":
                r = native(n_vec, x, y)
                if not np.isclose(r, x @ y):
                    raise RuntimeError("validation failed")
                flops = 2.0 * n_vec
                m = measure(lambda: native(n_vec, x, y), batches=batches)
            else:
                raise KeyError(f"unknown kernel {kernel!r}")
            gf = m.gflops(flops)
            trials.append(TrialResult(cand, gf))
            if gf > best_gf:
                best, best_gf = cand, gf
        except Exception as exc:  # noqa: BLE001 - record and move on
            trials.append(TrialResult(cand, -1.0, error=str(exc)[:120]))
        if verbose:
            print(trials[-1].candidate.describe(), "->",
                  f"{trials[-1].gflops:.2f}" if trials[-1].gflops >= 0
                  else trials[-1].error)
    if best is None:
        raise RuntimeError(f"every candidate failed for kernel {kernel!r}")
    return TuningResult(kernel=kernel, arch=arch, best=best,
                        best_gflops=best_gf, trials=trials)
