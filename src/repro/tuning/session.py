"""Durable, resumable tuning sessions (write-ahead trial journal).

The empirical search (paper §2.1) runs hundreds of generate → assemble →
validate → time trials per kernel.  On real machines long searches die
mid-flight — SIGINT, OOM kills, CI timeouts — and before this module a
killed search forfeited every measurement the process had not yet pushed
into the measurement cache's content-addressed records.  A session turns
the search itself into a durable artifact:

- a **manifest** (``manifest.json``) identifying the search — kernel,
  arch, batches, the full candidate list, and a ``search_key`` content
  hash over all of it — plus liveness metadata (status, pid, host,
  timestamps);
- a **write-ahead trial journal** (``journal.jsonl``): one JSON line per
  *completed* trial, appended and fsynced before the search moves to the
  next candidate, so the instant of death loses at most the in-flight
  trial.

Both live under ``<cache root>/sessions/<session id>/``.  Resuming
(``python -m repro tune <kernel> --resume`` or ``repro tune sessions
resume <id>``) matches the manifest's ``search_key`` against the
requested search, replays every journaled trial verbatim — no
generation, no assembly, no re-timing — and continues exactly where the
dead process stopped, appending to the same journal.

Sessions end in one of three states: ``complete`` (the search returned a
winner), ``interrupted`` (graceful SIGINT/SIGTERM shutdown or an
injected ``interrupt`` fault), or ``failed`` (the search raised).  A
session whose manifest still says ``running`` but whose recorded PID is
dead was killed uncleanly (SIGKILL, OOM) — it is equally resumable,
because the journal was flushed per trial.  ``repro tune sessions gc``
prunes completed and abandoned sessions.

With the cache disabled (``REPRO_CACHE_DIR=off``) sessions are inert:
:func:`open_session` returns ``None`` and the search runs exactly as
before, in-process only.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..backend import fsio
from ..backend.cache import cache_root
from ..backend.locks import FileLock, LockTimeout, pid_alive
from ..obs import event, incr

#: manifest schema version; bump to orphan every existing session
SESSION_VERSION = 1

#: default age (seconds) past which a non-live session is garbage
DEFAULT_GC_AGE = 7 * 24 * 3600.0

#: manifest states
RUNNING, INTERRUPTED, COMPLETE, FAILED = (
    "running", "interrupted", "complete", "failed")


def sessions_root(root: Optional[Path] = None) -> Optional[Path]:
    """``<cache root>/sessions``; ``None`` when the cache is disabled."""
    root = root if root is not None else cache_root()
    return None if root is None else Path(root) / "sessions"


def search_key(kernel_key: str, arch_name: str, batches: int,
               candidate_descs: Sequence[str],
               workload_version: int) -> str:
    """Content address of one search: a session may only resume a search
    over the *identical* candidate list, workload, and batch count."""
    payload = "\x1f".join([
        "session", kernel_key, arch_name, f"batches={batches}",
        f"wl={workload_version}", *candidate_descs])
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def _atomic_write_json(path: Path, record: Dict[str, Any]) -> None:
    fsio.atomic_write_json(path, record, tag="session.manifest")


@dataclass
class TrialRecord:
    """One journaled trial, exactly as the search recorded it."""

    index: int
    candidate: str
    gflops: float
    category: str = "ok"
    error: Optional[str] = None
    cached: bool = False

    def to_json(self) -> Dict[str, Any]:
        rec: Dict[str, Any] = {"i": self.index, "candidate": self.candidate,
                               "gflops": self.gflops,
                               "category": self.category}
        if self.error is not None:
            rec["error"] = self.error
        if self.cached:
            rec["cached"] = True
        return rec

    @classmethod
    def from_json(cls, rec: Dict[str, Any]) -> "TrialRecord":
        return cls(index=int(rec["i"]), candidate=str(rec["candidate"]),
                   gflops=float(rec["gflops"]),
                   category=str(rec.get("category", "ok")),
                   error=rec.get("error"),
                   cached=bool(rec.get("cached", False)))


class TuningSession:
    """One durable search: manifest + append-only trial journal.

    The journal file handle stays open (append mode) for the session's
    lifetime; :meth:`record_trial` writes one line, flushes, and fsyncs,
    so a SIGKILL after the call loses nothing.
    """

    def __init__(self, path: Path, manifest: Dict[str, Any]) -> None:
        self.path = Path(path)
        self.manifest = manifest
        self._journal_fh = None

    # -- identity ----------------------------------------------------------

    @property
    def id(self) -> str:
        return self.manifest["id"]

    @property
    def status(self) -> str:
        return self.manifest.get("status", FAILED)

    @property
    def manifest_path(self) -> Path:
        return self.path / "manifest.json"

    @property
    def journal_path(self) -> Path:
        return self.path / "journal.jsonl"

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, root: Path, kernel: str, kernel_key: str, layout: str,
               arch_name: str, batches: int,
               candidate_descs: Sequence[str],
               key: str) -> "TuningSession":
        """Start a fresh session directory under ``root``."""
        # pid + uuid suffix: same-process, same-second sessions for one
        # search key must still land in distinct directories
        sid = (f"{kernel_key}-{arch_name}-{key[:8]}-"
               f"{os.getpid()}-{uuid.uuid4().hex[:8]}")
        path = Path(root) / sid
        path.mkdir(parents=True, exist_ok=True)
        manifest = {
            "version": SESSION_VERSION,
            "id": sid,
            "kernel": kernel,
            "kernel_key": kernel_key,
            "layout": layout,
            "arch": arch_name,
            "batches": batches,
            "search_key": key,
            "candidates": list(candidate_descs),
            "status": RUNNING,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "created": time.time(),
            "updated": time.time(),
            "trials_done": 0,
        }
        session = cls(path, manifest)
        session._write_manifest()
        incr("session.created")
        event("tune.session", action="create", id=sid, kernel=kernel_key)
        return session

    @classmethod
    def open(cls, path: Path) -> Optional["TuningSession"]:
        """Load a session from disk; ``None`` when unreadable/foreign."""
        path = Path(path)
        try:
            manifest = json.loads((path / "manifest.json").read_text())
        except (OSError, ValueError):
            return None
        if manifest.get("version") != SESSION_VERSION:
            return None
        return cls(path, manifest)

    def adopt(self) -> None:
        """Take ownership for a resume: this process is now the runner."""
        self.manifest.update(status=RUNNING, pid=os.getpid(),
                             host=socket.gethostname(),
                             updated=time.time())
        self._write_manifest()
        incr("session.resumed")
        event("tune.session", action="resume", id=self.id,
              trials_done=self.manifest.get("trials_done", 0))

    def finish(self, status: str, **extra: Any) -> None:
        """Seal the session: close the journal, stamp the final status."""
        if self._journal_fh is not None:
            try:
                self._journal_fh.close()
            except OSError:
                pass
            self._journal_fh = None
        self.manifest.update(status=status, updated=time.time(), **extra)
        self._write_manifest()
        event("tune.session", action="finish", id=self.id, status=status,
              trials_done=self.manifest.get("trials_done", 0))

    def _write_manifest(self) -> None:
        if fsio.disk_degraded() is not None:
            return  # in-memory-only mode: stop touching the disk
        try:
            self.path.mkdir(parents=True, exist_ok=True)
            _atomic_write_json(self.manifest_path, self.manifest)
        except OSError:
            incr("session.io_error")
            # sessions are best-effort; never fail the search

    # -- the write-ahead journal -------------------------------------------

    def record_trial(self, record: TrialRecord) -> None:
        """Append one completed trial; durable before this returns."""
        if fsio.disk_degraded() is not None:
            return  # in-memory-only mode: the search continues unjournaled
        try:
            kind = fsio.disk_checkpoint("journal.append")
            if self._journal_fh is None:
                self._journal_fh = open(self.journal_path, "a",
                                        encoding="utf-8")
            line = json.dumps(record.to_json(), separators=(",", ":"))
            if kind == "torn":
                # injected torn append: half the line lands, no newline —
                # exactly what a crash mid-write leaves behind
                self._journal_fh.write(line[:max(1, len(line) // 2)])
                self._journal_fh.flush()
                os.fsync(self._journal_fh.fileno())
                return
            self._journal_fh.write(line + "\n")
            self._journal_fh.flush()
            os.fsync(self._journal_fh.fileno())
        except OSError as exc:
            fsio.note_disk_error(exc, "journal.append")
            incr("session.io_error")
            return  # degrade: the search continues, just less durable
        self.manifest["trials_done"] = \
            int(self.manifest.get("trials_done", 0)) + 1
        self.manifest["updated"] = time.time()
        self._write_manifest()
        incr("session.trials_journaled")

    def journal_entries(self) -> List[TrialRecord]:
        """Every parseable journaled trial, in write order.

        A torn final line (the process died mid-``write``) is dropped
        silently — by construction it is the only line that can be torn.
        """
        entries: List[TrialRecord] = []
        try:
            text = self.journal_path.read_text(encoding="utf-8")
        except OSError:
            return entries
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(TrialRecord.from_json(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                continue
        return entries

    # -- liveness ----------------------------------------------------------

    def is_live(self) -> bool:
        """Does the recorded runner process still exist (best effort)?"""
        if self.status != RUNNING:
            return False
        if self.manifest.get("host") != socket.gethostname():
            # foreign host: assume live unless very old
            return self.age() < DEFAULT_GC_AGE
        return pid_alive(int(self.manifest.get("pid", 0) or 0)) is not False

    def is_resumable(self) -> bool:
        """Interrupted, or uncleanly killed (``running`` + dead PID)."""
        if self.status == INTERRUPTED:
            return True
        return self.status == RUNNING and not self.is_live()

    def age(self) -> float:
        updated = self.manifest.get("updated") or \
            self.manifest.get("created") or 0
        try:
            return max(0.0, time.time() - float(updated))
        except (TypeError, ValueError):
            return 0.0

    def describe(self) -> str:
        m = self.manifest
        state = self.status
        if state == RUNNING and not self.is_live():
            state = "abandoned"
        return (f"{self.id:<52} {m.get('kernel_key', '?'):<10} "
                f"{state:<12} {m.get('trials_done', 0):>3}"
                f"/{len(m.get('candidates', [])):<3} trials")


# ---------------------------------------------------------------------------
# Store-level operations (list / find / gc)
# ---------------------------------------------------------------------------


def list_sessions(root: Optional[Path] = None) -> List[TuningSession]:
    """Every readable session under the store, oldest first."""
    sroot = sessions_root(root)
    if sroot is None or not sroot.exists():
        return []
    sessions = []
    for path in sorted(sroot.iterdir()):
        if not path.is_dir():
            continue
        session = TuningSession.open(path)
        if session is not None:
            sessions.append(session)
    sessions.sort(key=lambda s: s.manifest.get("created", 0))
    return sessions


def sessions_inventory(root: Optional[Path] = None) -> dict:
    """Summary for ``cache stats``: how many sessions exist, how many
    could be resumed, and how much journal data they hold on disk."""
    inventory = {"count": 0, "resumable": 0, "journal_bytes": 0}
    for session in list_sessions(root):
        inventory["count"] += 1
        if session.is_resumable():
            inventory["resumable"] += 1
        try:
            inventory["journal_bytes"] += session.journal_path.stat().st_size
        except OSError:
            pass
    return inventory


def get_session(session_id: str,
                root: Optional[Path] = None) -> Optional[TuningSession]:
    sroot = sessions_root(root)
    if sroot is None:
        return None
    return TuningSession.open(sroot / session_id)


def find_resumable(key: str,
                   root: Optional[Path] = None) -> Optional[TuningSession]:
    """The most recently updated resumable session for ``key``."""
    matches = [s for s in list_sessions(root)
               if s.manifest.get("search_key") == key and s.is_resumable()]
    if not matches:
        return None
    return max(matches, key=lambda s: s.manifest.get("updated", 0))


@dataclass
class GCResult:
    removed: List[str] = field(default_factory=list)
    kept: List[str] = field(default_factory=list)


def gc_sessions(root: Optional[Path] = None,
                max_age: float = DEFAULT_GC_AGE,
                include_resumable: bool = False) -> GCResult:
    """Prune sessions nobody will come back for.

    Removed: ``complete``/``failed`` sessions, anything older than
    ``max_age`` regardless of state, and (with ``include_resumable``)
    interrupted/abandoned sessions too.  A live ``running`` session is
    always kept.  Concurrent gc runs are serialized by a lock so two
    never race over the same directory.
    """
    import shutil

    sroot = sessions_root(root)
    result = GCResult()
    if sroot is None or not sroot.exists():
        return result
    lock = FileLock(sroot.parent / "locks" / "sessions-gc.lock")
    try:
        lock.path.parent.mkdir(parents=True, exist_ok=True)
        lock.acquire()
    except (OSError, LockTimeout):
        return result  # another gc is running; let it finish
    try:
        for session in list_sessions(root):
            expired = session.age() > max_age
            dead_end = session.status in (COMPLETE, FAILED)
            resumable = session.is_resumable()
            if session.status == RUNNING and session.is_live() \
                    and not expired:
                result.kept.append(session.id)
                continue
            if dead_end or expired or (resumable and include_resumable):
                shutil.rmtree(session.path, ignore_errors=True)
                result.removed.append(session.id)
                incr("session.gc_removed")
            else:
                result.kept.append(session.id)
    finally:
        lock.release()
    return result
