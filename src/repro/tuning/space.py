"""Tuning search spaces (paper §2.1).

"Because loop unrolling factors are extremely sensitive to variations of
the underlying machine architecture, our Optimized C Kernel Generator
automatically experiments with different unrolling and unroll&jam
configurations and selects the best performing configurations based on the
performance of their optimized code."

Each candidate is an (OptimizationConfig, vectorization-strategy) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..isa.arch import ArchSpec
from ..transforms.pipeline import OptimizationConfig


@dataclass(frozen=True)
class Candidate:
    config: OptimizationConfig
    strategy: str = "auto"

    def describe(self) -> str:
        return f"{self.config.describe()} [{self.strategy}]"


def gemm_candidates(arch: ArchSpec, layout: str = "dup") -> List[Candidate]:
    """unroll&jam (nu, mu), l-unroll ku, prefetch distance sweep."""
    n = arch.doubles_per_vector
    out: List[Candidate] = []
    nu_opts = (2, 4)
    mu_opts = (n, 2 * n, 3 * n, 4 * n)
    reserve = 1 if arch.has_fma else 2  # rotating broadcast (+ mul temp)
    for nu in nu_opts:
        for mu in mu_opts:
            # accumulators + A vectors + reserve must fit the register file
            if nu * (mu // n) + mu // n + reserve > arch.n_vector_regs:
                continue
            for ku in (1, 2, 4):
                for pf in (None, {"A": 8 * n, "B": 4 * n}):
                    cfg = OptimizationConfig(
                        unroll_jam=(("j", nu), ("i", mu)),
                        unroll=((("l", ku),) if ku > 1 else ()),
                        prefetch_distance=pf,
                    )
                    out.append(Candidate(cfg))
    if layout == "shuf":
        # the Shuf method applies to n x n grids on this layout
        cfg = OptimizationConfig(unroll_jam=(("j", n), ("i", n)))
        out.append(Candidate(cfg, strategy="shuf"))
        cfg2 = OptimizationConfig(unroll_jam=(("j", n), ("i", n)),
                                  unroll=(("l", 2),))
        out.append(Candidate(cfg2, strategy="shuf"))
    return out


def gemv_candidates(arch: ArchSpec) -> List[Candidate]:
    n = arch.doubles_per_vector
    out = []
    for u in (n, 2 * n, 4 * n, 8 * n):
        for pf in (None, {"A": 16 * n}):
            out.append(Candidate(OptimizationConfig(
                unroll=(("j", u),), prefetch_distance=pf)))
    return out


def axpy_candidates(arch: ArchSpec) -> List[Candidate]:
    n = arch.doubles_per_vector
    out = []
    for u in (n, 2 * n, 4 * n, 8 * n):
        for pf in (None, {"X": 16 * n, "Y": 16 * n}):
            out.append(Candidate(OptimizationConfig(
                unroll=(("i", u),), prefetch_distance=pf)))
    return out


def dot_candidates(arch: ArchSpec) -> List[Candidate]:
    n = arch.doubles_per_vector
    out = []
    for u in (2 * n, 4 * n, 8 * n):
        for pf in (None, {"X": 16 * n, "Y": 16 * n}):
            out.append(Candidate(OptimizationConfig(
                unroll=(("i", u),), split=(("i", "res", u),),
                prefetch_distance=pf)))
    return out


CANDIDATE_SPACES = {
    "gemm": gemm_candidates,
    "gemv": gemv_candidates,
    "axpy": axpy_candidates,
    "dot": dot_candidates,
}


def candidates_for(kernel: str, arch: ArchSpec, **kw) -> List[Candidate]:
    try:
        space = CANDIDATE_SPACES[kernel]
    except KeyError:
        raise KeyError(f"no tuning space for kernel {kernel!r}") from None
    return space(arch, **kw) if kernel == "gemm" else space(arch)
