"""The AUGEM framework facade (paper Fig. 1).

``Augem.generate`` runs the full four-component pipeline on a simple-C DLA
kernel:

1. **Optimized C Kernel Generator** — :mod:`repro.transforms` under an
   :class:`~repro.transforms.OptimizationConfig`;
2. **Template Identifier** — :mod:`repro.core.identifier`;
3. **Template Optimizer** — :mod:`repro.core.optimizers` driven by the
   vectorization plan of :mod:`repro.core.vectorize`;
4. **Assembly Kernel Generator** — :mod:`repro.core.asmgen`.

The result bundles the instruction stream (consumed by the emulator), the
GAS text (consumed by the native backend), and every intermediate artifact
for inspection.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..isa.arch import ArchSpec, detect_host
from ..isa.gas import emit_function
from ..isa.instructions import Item
from ..obs import span
from ..poet import cast as C
from ..poet.parser import parse_function
from ..poet.printer import to_c
from ..transforms.pipeline import OptimizationConfig, optimize_c_kernel
from .asmgen import generate_assembly_items
from .identifier import identify_templates
from .vectorize import VectorPlan, plan_vectorization


@dataclass
class GeneratedKernel:
    """Everything produced for one kernel on one architecture."""

    name: str  # exported symbol name
    arch: ArchSpec
    config: OptimizationConfig
    strategy: str  # vectorization strategy preference used
    simple_c: str  # the input kernel
    low_level_c: str  # after the Optimized C Kernel Generator
    tagged_fn: C.FuncDef  # template-tagged AST
    regions: List[C.TaggedRegion]
    plan: VectorPlan
    items: List[Item]  # instruction stream (emulator input)
    asm_text: str  # complete GAS function (native input)

    @property
    def template_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.regions:
            counts[r.template] = counts.get(r.template, 0) + 1
        return counts

    def describe(self) -> str:
        lines = [
            f"kernel {self.name} for {self.arch}",
            f"config: {self.config.describe()}",
            f"strategy: {self.strategy}",
            f"templates: {self.template_counts}",
            f"instructions: {sum(1 for i in self.items if type(i).__name__ == 'Instr')}",
        ]
        return "\n".join(lines)

    @property
    def content_hash(self) -> str:
        """Stable content address of the finished kernel.

        Hashes the emitted assembly (which embeds the symbol name, the
        arch's instruction selection, and every optimization decision) —
        the key under which persisted tuning measurements are filed.
        """
        return hashlib.sha256(self.asm_text.encode()).hexdigest()[:24]

    @property
    def body_hash(self) -> str:
        """Content address of the kernel *body*, symbol name normalized.

        The tuner and the library facade generate byte-identical code
        under different exported symbol names (``tune_axpy_…`` vs
        ``daxpy_kernel``); replacing the name with a placeholder before
        hashing lets both address the same quarantine record.
        """
        body = self.asm_text.replace(self.name, "@SYM@")
        return hashlib.sha256(body.encode()).hexdigest()[:24]


def quarantine_key(kernel_key: str, arch: ArchSpec,
                   gk: "GeneratedKernel") -> str:
    """Content address of a known-crashing kernel in the quarantine store.

    Shared by the tuner (which writes entries) and the dispatch layer
    (which both reads and writes), and keyed by :attr:`body_hash` so a
    candidate quarantined under its tuning symbol name also blocks the
    identical code generated under the library's exported name.
    """
    return hashlib.sha256(
        f"quar\x1f{kernel_key}\x1f{arch.name}\x1f{gk.body_hash}".encode()
    ).hexdigest()[:24]


def stable_kernel_name(kernel: str, arch: ArchSpec,
                       config: OptimizationConfig,
                       strategy: str = "auto") -> str:
    """A deterministic exported-symbol name for a tuning candidate.

    The symbol name is part of the emitted assembly and therefore of the
    compile-cache key, so it must depend only on *what* is generated —
    never on candidate-list position or process state — for a re-tuning
    run to hit the persistent cache.
    """
    digest = hashlib.sha256(
        f"{config.describe()}\x1f{strategy}".encode()
    ).hexdigest()[:10]
    return f"tune_{kernel}_{arch.name}_{digest}"


#: Default optimization configurations per (kernel family, SIMD lane count).
def default_config(kernel: str, arch: ArchSpec) -> OptimizationConfig:
    """A sensible starting configuration (the tuner refines it)."""
    n = arch.doubles_per_vector
    if kernel in ("gemm", "gemm_shuf"):
        if kernel == "gemm_shuf":
            # the Shuf method needs an n x n grid
            return OptimizationConfig(
                unroll_jam=(("j", n), ("i", n)),
                prefetch_distance={"A": 8 * n, "B": 8 * n},
            )
        # wide-tile register economics (e.g. 4x12 on AVX+FMA: 12
        # accumulators, 3 A vectors, 1 rotating broadcast — the OpenBLAS
        # kernel shape); non-FMA targets need a mul temp, so one A chunk
        # fewer
        mu = 3 * n if arch.has_fma else 2 * n
        return OptimizationConfig(
            unroll_jam=(("j", 2 if n == 2 else 4), ("i", mu)),
            unroll=(("l", 2),),
        )
    if kernel == "gemv":
        return OptimizationConfig(
            unroll=(("j", 2 * n),),
            prefetch_distance={"A": 16 * n},
        )
    if kernel == "gemv_n":
        return OptimizationConfig(
            unroll=(("j", 4 * n),),
            split=(("j", "res", 4 * n),),
            prefetch_distance={"A": 16 * n},
        )
    if kernel == "axpy":
        return OptimizationConfig(
            unroll=(("i", 4 * n),),
            prefetch_distance={"X": 16 * n, "Y": 16 * n},
        )
    if kernel == "scal":
        return OptimizationConfig(
            unroll=(("i", 4 * n),),
            prefetch_distance={"X": 16 * n},
        )
    if kernel == "dot":
        return OptimizationConfig(
            unroll=(("i", 4 * n),),
            split=(("i", "res", 4 * n),),
            prefetch_distance={"X": 16 * n, "Y": 16 * n},
        )
    raise KeyError(f"no default configuration for kernel {kernel!r}")


class Augem:
    """Template-based DLA kernel generator (the paper's framework)."""

    def __init__(self, arch: Optional[ArchSpec] = None,
                 schedule: bool = True,
                 unified_regalloc: bool = False) -> None:
        self.arch = arch or detect_host()
        self.schedule = schedule
        self.unified_regalloc = unified_regalloc

    def generate(
        self,
        kernel_source: str,
        config: OptimizationConfig,
        strategy: str = "auto",
        name: Optional[str] = None,
    ) -> GeneratedKernel:
        """Run the full pipeline on ``kernel_source`` (simple C text).

        :param strategy: vectorization preference — ``"auto"``, ``"vdup"``,
            ``"shuf"`` or ``"scalar"`` (see :func:`plan_vectorization`).
        :param name: exported symbol name (defaults to the C function name).
        """
        with span("pipeline.generate", arch=self.arch.name,
                  config=config.describe(), strategy=strategy) as sp:
            # 1. Optimized C Kernel Generator
            with span("pipeline.c_opt"):
                fn = optimize_c_kernel(kernel_source, config)
                low_level_c = to_c(fn)
            # 2. Template Identifier
            with span("pipeline.identify") as sp_id:
                fn, regions = identify_templates(fn)
                sp_id.set(regions=len(regions))
            # 3. Template Optimizer planning (strategies + packing)
            with span("pipeline.plan"):
                plan = plan_vectorization(regions, self.arch, strategy)
            # 3+4. Template Optimizer emission + Assembly Kernel Generator
            with span("pipeline.asmgen"):
                items = generate_assembly_items(
                    fn, self.arch, plan, schedule=self.schedule,
                    unified_regalloc=self.unified_regalloc)
                sym = name or fn.name
                asm_text = emit_function(sym, items)
            sp.set(kernel=sym)
        return GeneratedKernel(
            name=sym,
            arch=self.arch,
            config=config,
            strategy=strategy,
            simple_c=kernel_source,
            low_level_c=low_level_c,
            tagged_fn=fn,
            regions=regions,
            plan=plan,
            items=items,
            asm_text=asm_text,
        )

    def generate_named(self, kernel: str,
                       config: Optional[OptimizationConfig] = None,
                       strategy: str = "auto",
                       name: Optional[str] = None) -> GeneratedKernel:
        """Generate one of the built-in kernels (gemm, gemm_shuf, gemv,
        axpy, dot) with its default (or the given) configuration."""
        from ..blas.kernels import KERNEL_SOURCES

        source, func_name = KERNEL_SOURCES[kernel]
        cfg = config or default_config(kernel, self.arch)
        return self.generate(source, cfg, strategy=strategy,
                             name=name or func_name)
