"""The AUGEM core: templates, identifier, optimizers, assembly generation."""

from .asmgen import CodegenError, KernelCodeGen, generate_assembly_items
from .framework import Augem, GeneratedKernel, default_config
from .identifier import SumReduce, TemplateIdentifier, identify_templates
from .liveness import Liveness
from .optimizers import OPTIMIZERS
from .regalloc import (
    Loc,
    OutOfRegistersError,
    Pack,
    VectorAllocator,
    array_root,
)
from .scheduler import schedule_block, schedule_items
from .templates import (
    MMComp,
    MMStore,
    MVComp,
    TEMPLATE_NAMES,
    UnrolledComp,
    UnrolledMVComp,
    UnrolledStore,
    match_mm_comp,
    match_mm_store,
    match_mv_comp,
)
from .vectorize import PlannedPack, RegionPlan, VectorPlan, plan_vectorization

__all__ = [
    "Augem",
    "GeneratedKernel",
    "default_config",
    "TemplateIdentifier",
    "identify_templates",
    "SumReduce",
    "Liveness",
    "OPTIMIZERS",
    "VectorAllocator",
    "OutOfRegistersError",
    "Pack",
    "Loc",
    "array_root",
    "schedule_block",
    "schedule_items",
    "TEMPLATE_NAMES",
    "MMComp",
    "MMStore",
    "MVComp",
    "UnrolledComp",
    "UnrolledStore",
    "UnrolledMVComp",
    "match_mm_comp",
    "match_mm_store",
    "match_mv_comp",
    "VectorPlan",
    "RegionPlan",
    "PlannedPack",
    "plan_vectorization",
    "KernelCodeGen",
    "CodegenError",
    "generate_assembly_items",
]
