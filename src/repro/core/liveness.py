"""Live-range computation for low-level C variables.

The paper computes live ranges "globally during the template identification
process" (§3.1) and uses them to decide when a register can be released and
removed from the global ``reg_table``.

We assign every statement (including :class:`TaggedRegion` nodes) a position
in a flattened pre-order walk and record, per variable, the first and last
positions mentioning it.  A mention inside a loop extends the range to the
loop's end marker, making ranges conservative for loop-carried values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..poet import cast as C


@dataclass
class LiveRange:
    start: int
    end: int


class Liveness:
    """Flattened-position live ranges over a function body."""

    def __init__(self, fn: C.FuncDef) -> None:
        self._pos: Dict[int, int] = {}  # id(stmt) -> position
        self._range: Dict[str, LiveRange] = {}
        self._counter = 0
        for p in fn.params:
            self._mention(p.name, 0)
        self._walk_block(fn.body, [])

    # -- construction ----------------------------------------------------
    def _next(self) -> int:
        self._counter += 1
        return self._counter

    def _mention(self, var: str, pos: int) -> None:
        r = self._range.get(var)
        if r is None:
            self._range[var] = LiveRange(pos, pos)
        else:
            r.start = min(r.start, pos)
            r.end = max(r.end, pos)

    def _mention_all(self, node: C.Node, pos: int, loop_ends: List[int]) -> None:
        for n in node.walk():
            if isinstance(n, C.Id):
                self._mention(n.name, pos)
            elif isinstance(n, C.Decl):
                self._mention(n.name, pos)

    def _extend_loop_vars(self, node: C.Node, end_pos: int) -> None:
        for n in node.walk():
            name = None
            if isinstance(n, C.Id):
                name = n.name
            elif isinstance(n, C.Decl):
                name = n.name
            if name is not None:
                r = self._range.get(name)
                if r is not None:
                    r.end = max(r.end, end_pos)

    def _walk_block(self, block: C.Block, loop_stack: List[C.For]) -> None:
        for s in block.stmts:
            pos = self._next()
            self._pos[id(s)] = pos
            if isinstance(s, C.For):
                for part in (s.init, s.cond, s.step):
                    if part is not None:
                        self._mention_all(part, pos, [])
                self._walk_block(s.body, loop_stack + [s])
                end_pos = self._next()
                # everything mentioned inside the loop lives to its end
                self._extend_loop_vars(s, end_pos)
            elif isinstance(s, C.If):
                self._mention_all(s.cond, pos, [])
                self._walk_block(s.then, loop_stack)
                if s.els is not None:
                    self._walk_block(s.els, loop_stack)
            elif isinstance(s, C.Block):
                self._walk_block(s, loop_stack)
            elif isinstance(s, C.TaggedRegion):
                for inner in s.stmts:
                    self._mention_all(inner, pos, [])
            else:
                self._mention_all(s, pos, [])

    # -- queries -----------------------------------------------------------
    def position_of(self, stmt: C.Node) -> int:
        """Flattened position of a top-level statement (or region)."""
        return self._pos.get(id(stmt), 0)

    def last_use(self, var: str) -> int:
        r = self._range.get(var)
        return r.end if r is not None else -1

    def first_use(self, var: str) -> int:
        r = self._range.get(var)
        return r.start if r is not None else -1

    def dead_after(self, var: str, pos: int) -> bool:
        """True when ``var`` has no mention after position ``pos``."""
        return self.last_use(var) <= pos

    def live_out(self, stmt: C.Node) -> Set[str]:
        """Variables whose range extends beyond ``stmt``'s position."""
        pos = self.position_of(stmt)
        return {v for v, r in self._range.items() if r.start <= pos < r.end}

    def known_vars(self) -> Set[str]:
        return set(self._range)
