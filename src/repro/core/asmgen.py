"""The Assembly Kernel Generator (paper §2.4).

Translates a template-tagged low-level C kernel into a complete x86-64
assembly function:

- tagged regions are dispatched through the ``Optimizer[...]`` table
  (:mod:`repro.core.optimizers`), sharing one vector register allocator and
  its global ``reg_table`` so register assignments stay consistent between
  template regions and the surrounding code (paper Fig. 2);
- the remaining low-level C — loop control, pointer arithmetic, scalar
  float glue — is translated "in a straightforward fashion" by this module;
- integer/pointer variables get a small static general-purpose register
  assignment (hot variables by loop-depth-weighted use count; the rest live
  in stack slots, accessed through two reserved scratch registers);
- the System V AMD64 prologue/epilogue is emitted around the body.

The output is a stream of :class:`~repro.isa.instructions.Item` that both
the GAS emitter (native path) and the emulator (validation path) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..isa.arch import ArchSpec
from ..isa.instructions import Comment, Instr, Item, Label, instr
from ..isa.mapping import MappingRules
from ..isa.operands import Imm, LabelRef, Mem
from ..isa.registers import (
    ALLOCATABLE_GP,
    R11,
    RAX,
    RSP,
    Register,
    SysVABI,
    xmm,
)
from ..poet import cast as C
from ..poet.errors import PoetError
from ..poet.symtab import SymbolTable
from ..transforms.prefetch import PREFETCH_FUNCS
from .liveness import Liveness
from .optimizers import OPTIMIZERS
from .regalloc import VectorAllocator, array_root
from .scheduler import schedule_items
from .vectorize import VectorPlan

_PREFETCH_MNEMONIC = {
    "prefetch_t0": "prefetcht0",
    "prefetch_t1": "prefetcht1",
    "prefetch_t2": "prefetcht2",
    "prefetch_nta": "prefetchnta",
}

_CMP_JCC = {"<": "jl", "<=": "jle", ">": "jg", ">=": "jge",
            "==": "je", "!=": "jne"}


class CodegenError(PoetError):
    """Raised when a construct reaches codegen that it cannot translate."""


def _usage_weights(fn: C.FuncDef) -> Dict[str, int]:
    """Use count per variable, weighted 4^loop_depth."""
    weights: Dict[str, int] = {}

    def walk(node: C.Node, depth: int) -> None:
        if isinstance(node, C.For):
            for part in (node.init, node.cond, node.step):
                if part is not None:
                    walk(part, depth + 1)
            walk(node.body, depth + 1)
            return
        if isinstance(node, C.Id):
            weights[node.name] = weights.get(node.name, 0) + 4 ** min(depth, 8)
        if isinstance(node, C.TaggedRegion):
            for s in node.stmts:
                walk(s, depth)
            return
        for child in node.children():
            walk(child, depth)

    walk(fn.body, 0)
    for p in fn.params:  # params always count at least once
        weights.setdefault(p.name, 1)
    return weights


class KernelCodeGen:
    """Code generation context shared with the template optimizers."""

    def __init__(self, fn: C.FuncDef, arch: ArchSpec, plan: VectorPlan,
                 schedule: bool = True, unified_regalloc: bool = False) -> None:
        self.fn = fn
        self.arch = arch
        self.plan = plan
        self.schedule = schedule
        self.map = MappingRules(arch)
        self.symtab = SymbolTable.of_function(fn)
        self.liveness = Liveness(fn)
        self.items: List[Item] = []
        self._label_counter = 0
        self._epilogue_label = f".L_{fn.name}_epilogue"
        self._used_epilogue_label = False

        # ---- vector side: per-array queues (paper §3.1) -------------------
        arrays = sorted(
            {array_root(n) for n in self.symtab.pointers()}
        )
        self.alloc = VectorAllocator(arch, arrays, unified=unified_regalloc)

        # ---- GP side: static assignment by weighted use count -------------
        int_vars = [
            name for name in self.symtab
            if self.symtab.type_of(name).is_pointer
            or self.symtab.is_integer(name)
        ]
        weights = _usage_weights(fn)
        int_vars.sort(key=lambda v: -weights.get(v, 0))
        self.gp_home: Dict[str, Register] = {}
        for var, reg in zip(int_vars, ALLOCATABLE_GP):
            self.gp_home[var] = reg

        # stack slots: every parameter (for arg staging / float
        # rematerialization) plus every spilled int/pointer variable
        self.slot: Dict[str, int] = {}
        offset = 0
        for p in fn.params:
            self.slot[p.name] = offset
            offset += 8
        for var in int_vars:
            if var not in self.gp_home and var not in self.slot:
                self.slot[var] = offset
                offset += 8
        self._expr_scratch_base = offset
        self._expr_scratch_slots = 4
        offset += 8 * self._expr_scratch_slots
        self._float_const_slot = offset  # bounce slot for float literals
        offset += 8
        self.frame_size = (offset + 15) & ~15

        self.float_params = {
            p.name for p in fn.params if p.ctype.is_float
        }

    # ------------------------------------------------------------------
    # emission primitives
    # ------------------------------------------------------------------
    def emit(self, ins) -> None:
        if isinstance(ins, list):
            self.items.extend(ins)
        else:
            self.items.append(ins)

    def comment(self, text: str) -> None:
        self.items.append(Comment(text))

    def new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f".L_{self.fn.name}_{hint}{self._label_counter}"

    # ------------------------------------------------------------------
    # GP variable access
    # ------------------------------------------------------------------
    def _slot_mem(self, var: str) -> Mem:
        return Mem(base=RSP, disp=self.slot[var])

    def gp_read(self, var: str, scratch: Register = R11) -> Register:
        """Register holding ``var``'s value (loads spilled vars to scratch)."""
        home = self.gp_home.get(var)
        if home is not None:
            return home
        if var not in self.slot:
            raise CodegenError(f"integer variable {var!r} has no storage")
        self.emit(instr("mov", self._slot_mem(var), scratch,
                        comment=f"reload {var}"))
        return scratch

    def gp_write_from(self, var: str, src: Register) -> None:
        home = self.gp_home.get(var)
        if home is not None:
            if home.name != src.name:
                self.emit(instr("mov", src, home))
        else:
            self.emit(instr("mov", src, self._slot_mem(var),
                            comment=f"spill {var}"))

    # ------------------------------------------------------------------
    # integer / pointer expression evaluation
    # ------------------------------------------------------------------
    def _expr_scratch(self, depth: int) -> Mem:
        """Stack slot used to park intermediate values of nested integer
        expressions (one per nesting depth, so recursion is clobber-free)."""
        if depth >= self._expr_scratch_slots:
            raise CodegenError("integer expression too deeply nested")
        return Mem(base=RSP, disp=self._expr_scratch_base + 8 * depth)

    def eval_int(self, e: C.Node, dest: Register, depth: int = 0) -> None:
        """Emit code computing integer expression ``e`` into ``dest``.

        Uses only ``dest`` plus stack scratch slots — no other registers are
        clobbered, so callers may hold live values in any other register.
        """
        e = C.const_fold(e)
        if isinstance(e, C.IntLit):
            self.emit(instr("mov", Imm(e.value), dest))
            return
        if isinstance(e, C.Id):
            home = self.gp_home.get(e.name)
            if home is not None:
                if home.name != dest.name:
                    self.emit(instr("mov", home, dest))
            else:
                self.emit(instr("mov", self._slot_mem(e.name), dest))
            return
        if isinstance(e, C.UnaryOp) and e.op == "-":
            self.eval_int(e.operand, dest, depth)
            self.emit(instr("neg", dest))
            return
        if isinstance(e, C.BinOp) and e.op in ("+", "-", "*", "<<"):
            self.eval_int(e.left, dest, depth)
            mn = {"+": "add", "-": "sub", "*": "imul", "<<": "sal"}[e.op]
            right = C.const_fold(e.right)
            if isinstance(right, C.IntLit):
                self.emit(instr(mn, Imm(right.value), dest))
            elif isinstance(right, C.Id):
                src = self.gp_home.get(right.name)
                if src is None:
                    if e.op == "<<":
                        raise CodegenError("variable shift amounts unsupported")
                    self.emit(instr(mn, self._slot_mem(right.name), dest))
                else:
                    self.emit(instr(mn, src, dest))
            else:
                # both sides compound: park the left value on the stack
                slot = self._expr_scratch(depth)
                self.emit(instr("mov", dest, slot))
                self.eval_int(right, dest, depth + 1)
                if e.op == "+":
                    self.emit(instr("add", slot, dest))
                elif e.op == "*":
                    self.emit(instr("imul", slot, dest))
                elif e.op == "-":
                    self.emit(instr("neg", dest))
                    self.emit(instr("add", slot, dest))
                else:
                    raise CodegenError("variable shift amounts unsupported")
            return
        raise CodegenError(f"cannot evaluate integer expression: {e}")

    def eval_ptr(self, e: C.Node, dest: Register) -> None:
        """Emit code computing pointer expression ``e`` (element-scaled)."""
        e = C.const_fold(e)
        if isinstance(e, C.Id):
            home = self.gp_home.get(e.name)
            if home is not None:
                if home.name != dest.name:
                    self.emit(instr("mov", home, dest))
            else:
                self.emit(instr("mov", self._slot_mem(e.name), dest))
            return
        if isinstance(e, C.BinOp) and e.op in ("+", "-"):
            left_t = self.symtab.expr_type(e.left)
            if left_t.is_pointer:
                ptr_side, int_side = e.left, e.right
            else:
                ptr_side, int_side = e.right, e.left
                if e.op == "-":
                    raise CodegenError("int - pointer is not a pointer")
            elem = self.symtab.expr_type(ptr_side).pointee().sizeof
            self.eval_ptr(ptr_side, dest)
            int_side = C.const_fold(int_side)
            if isinstance(int_side, C.IntLit):
                disp = int_side.value * elem
                if disp:
                    self.emit(instr("add" if e.op == "+" else "sub",
                                    Imm(disp), dest))
                return
            self.eval_int(int_side, RAX)
            if e.op == "-":
                self.emit(instr("neg", RAX))
            if elem in (1, 2, 4, 8):
                self.emit(instr("lea", Mem(base=dest, index=RAX, scale=elem), dest))
            else:
                self.emit(instr("imul", Imm(elem), RAX))
                self.emit(instr("add", RAX, dest))
            return
        raise CodegenError(f"cannot evaluate pointer expression: {e}")

    # ------------------------------------------------------------------
    # addressing for the template optimizers
    # ------------------------------------------------------------------
    def addr(self, ptr: str, off: Optional[int],
             idx_expr: Optional[C.Node] = None) -> Mem:
        """Memory operand for ``ptr[off]`` (literal) or ``ptr[idx_expr]``.

        May emit scratch loads; the caller must use the returned operand in
        the *next* instruction it emits.
        """
        elem = self.symtab.type_of(ptr).pointee().sizeof
        base = self.gp_read(ptr, scratch=R11)
        if off is not None:
            return Mem(base=base, disp=off * elem)
        idx = C.const_fold(idx_expr)
        if isinstance(idx, C.IntLit):
            return Mem(base=base, disp=idx.value * elem)
        if isinstance(idx, C.Id) and idx.name in self.gp_home:
            return Mem(base=base, index=self.gp_home[idx.name], scale=elem)
        self.eval_int(idx, RAX)
        return Mem(base=base, index=RAX, scale=elem)

    # ------------------------------------------------------------------
    # float scalar access
    # ------------------------------------------------------------------
    def scalar_reg(self, var: str) -> Register:
        """Whole register holding ``var`` (materializes float params)."""
        loc = self.alloc.loc(var)
        if loc is not None:
            if loc.is_lane:
                raise CodegenError(
                    f"{var!r} lives in a vector lane; use read_scalar_value"
                )
            return loc.reg
        if var in self.float_params:
            cls = "tmp"
            loc = self.alloc.alloc(var, cls)
            slot = self._slot_mem(var)
            if var in self.plan.broadcast_vars:
                self.emit(self.map.vdup(slot, loc.reg,
                                        comment=f"broadcast param {var}"))
            else:
                self.emit(self.map.load_scalar(slot, loc.reg,
                                               comment=f"load param {var}"))
            return loc.reg
        raise CodegenError(f"float variable {var!r} used before definition")

    def read_scalar_value(self, var: str) -> Tuple[Register, Callable[[], None]]:
        """Register containing ``var``'s scalar value plus a cleanup thunk.

        For pack lanes a fresh temp holding the extracted lane is returned
        (safe to clobber); for plain scalars the live register itself is
        returned (mutations update the variable, by design).
        """
        loc = self.alloc.loc(var)
        if loc is None:
            return self.scalar_reg(var), (lambda: None)
        if not loc.is_lane:
            return loc.reg, (lambda: None)
        tmp = self.alloc.alloc_temp_reg()
        self._extract_lane(loc.reg, loc.lane, tmp)
        return tmp, (lambda: self.alloc.free_reg(tmp))

    def _extract_lane(self, src: Register, lane: int, dst: Register) -> None:
        avx = self.arch.simd == "avx"
        wide = self.arch.vector_bytes == 32
        if lane >= 2 and not wide:
            raise CodegenError("lane >= 2 requires 256-bit registers")
        if wide and lane >= 2:
            self.emit(instr("vextractf128", Imm(1), src.ymm, dst.xmm))
            if lane == 3:
                self.emit(instr("vunpckhpd", dst.xmm, dst.xmm, dst.xmm))
            return
        if avx:
            if lane == 0:
                self.emit(instr("vmovapd", src.xmm, dst.xmm))
            else:
                self.emit(instr("vunpckhpd", src.xmm, src.xmm, dst.xmm))
            return
        self.emit(instr("movapd", src.xmm, dst.xmm))
        if lane == 1:
            self.emit(instr("unpckhpd", dst.xmm, dst.xmm))

    def pack_reg(self, members: List[str]) -> Register:
        """Register of the realized pack holding exactly ``members``."""
        loc = self.alloc.loc(members[0])
        if loc is None or loc.pack is None:
            raise CodegenError(f"{members[0]!r} is not in a realized pack")
        if loc.pack.members != list(members):
            raise CodegenError(
                f"pack mismatch: have {loc.pack.members}, need {members}"
            )
        return loc.pack.reg

    # ------------------------------------------------------------------
    # float statements outside template regions
    # ------------------------------------------------------------------
    def float_assign(self, stmt: C.Assign) -> None:
        lhs, rhs = stmt.lhs, stmt.rhs
        if stmt.op in ("+=", "-=", "*="):
            binop = {"+=": "+", "-=": "-", "*=": "*"}[stmt.op]
            stmt = C.Assign(lhs, "=", C.BinOp(binop, lhs.clone(), rhs))
            lhs, rhs = stmt.lhs, stmt.rhs

        # store: ptr[off] = value
        if isinstance(lhs, C.Index):
            src, cleanup = self._eval_float(rhs)
            ptr, off, idx = self._index_parts(lhs)
            self.emit(self.map.store_scalar(src, self.addr(ptr, off, idx),
                                            comment=f"store {ptr}[{off}]"))
            cleanup()
            return

        assert isinstance(lhs, C.Id)
        var = lhs.name

        # zero-initialization: realizes packs
        if isinstance(rhs, C.FloatLit) and rhs.value == 0.0:
            planned = self.plan.pack_of.get(var)
            if planned is not None:
                loc = self.alloc.loc(var)
                if loc is None:
                    pack = self.alloc.alloc_pack(
                        planned.members, planned.cls, planned.layout
                    )
                    self.emit(self.map.vzero(pack.reg))
                    pack.zeroed = True
                else:
                    if not loc.pack.zeroed:
                        self.emit(self.map.vzero(loc.pack.reg))
                        loc.pack.zeroed = True
                return
            loc = self.alloc.alloc(var)
            self.emit(self.map.vzero(loc.reg)
                      if var in self.plan.broadcast_vars
                      else self.map.zero_scalar(loc.reg))
            return
        # load: var = ptr[off]
        if isinstance(rhs, C.Index):
            ptr, off, idx = self._index_parts(rhs)
            cls = array_root(ptr)
            loc = self.alloc.loc(var) or self.alloc.alloc(var, cls)
            if var in self.plan.broadcast_vars:
                self.emit(self.map.vdup(self.addr(ptr, off, idx), loc.reg,
                                        comment=f"{var} = Vdup {ptr}[{off}]"))
            else:
                self.emit(self.map.load_scalar(self.addr(ptr, off, idx), loc.reg,
                                               comment=f"{var} = {ptr}[{off}]"))
            return

        # general float expression
        src, cleanup = self._eval_float(rhs)
        loc = self.alloc.loc(var)
        if loc is None:
            loc = self.alloc.alloc(var)
        if loc.is_lane:
            raise CodegenError(f"cannot assign to vector lane {var!r}")
        if loc.reg.index != src.index:
            self.emit(self.map.mov_scalar(src, loc.reg))
        cleanup()

    def _index_parts(self, e: C.Index):
        if not isinstance(e.base, C.Id):
            raise CodegenError(f"indirect array base unsupported: {e}")
        idx = C.const_fold(e.index)
        off = idx.value if isinstance(idx, C.IntLit) else None
        return e.base.name, off, idx

    def _eval_float(self, e: C.Node) -> Tuple[Register, Callable[[], None]]:
        """Evaluate a float expression tree; returns (reg, cleanup)."""
        if isinstance(e, C.Id):
            return self.read_scalar_value(e.name)
        if isinstance(e, C.FloatLit):
            # materialize via a 64-bit immediate bounced through the stack
            # (keeps both the native path and the emulator constant-pool-free)
            import struct

            tmp = self.alloc.alloc_temp_reg()
            if e.value == 0.0:
                self.emit(self.map.zero_scalar(tmp))
            else:
                bits = struct.unpack("<q", struct.pack("<d", e.value))[0]
                slot = Mem(base=RSP, disp=self._float_const_slot)
                self.emit(instr("mov", Imm(bits), RAX,
                                comment=f"double {e.value}"))
                self.emit(instr("mov", RAX, slot))
                self.emit(self.map.load_scalar(slot, tmp))
            return tmp, (lambda: self.alloc.free_reg(tmp))
        if isinstance(e, C.Index):
            ptr, off, idx = self._index_parts(e)
            tmp = self.alloc.alloc_temp_reg(array_root(ptr))
            self.emit(self.map.load_scalar(self.addr(ptr, off, idx), tmp))
            return tmp, (lambda: self.alloc.free_reg(tmp))
        if isinstance(e, C.BinOp) and e.op in ("+", "-", "*"):
            left, clean_l = self._eval_float(e.left)
            # copy left into a fresh temp so we never clobber a live value
            acc = self.alloc.alloc_temp_reg()
            self.emit(self.map.mov_scalar(left, acc))
            clean_l()
            right, clean_r = self._eval_float(e.right)
            if e.op == "+":
                self.emit(self.map.add_scalar(right, acc))
            elif e.op == "*":
                self.emit(self.map.mul_scalar(right, acc))
            else:
                if self.arch.simd == "avx":
                    self.emit(instr("vsubsd", right.xmm, acc.xmm, acc.xmm))
                else:
                    self.emit(instr("subsd", right.xmm, acc.xmm))
            clean_r()
            return acc, (lambda: self.alloc.free_reg(acc))
        raise CodegenError(f"cannot evaluate float expression: {e}")

    # ------------------------------------------------------------------
    # statement translation
    # ------------------------------------------------------------------
    def gen_function(self) -> List[Item]:
        self._prologue()
        self._gen_block(self.fn.body)
        self._epilogue()
        items = self.items
        if self.schedule:
            items = schedule_items(items)
        return items

    def _prologue(self) -> None:
        used_callee = sorted(
            {r.name for r in self.gp_home.values() if SysVABI.is_callee_saved(r)}
        )
        self._saved = used_callee
        for name in used_callee:
            from ..isa.registers import GP
            self.emit(instr("push", GP[name]))
        if self.frame_size:
            self.emit(instr("sub", Imm(self.frame_size), RSP))
        # stage every argument to its stack slot (clobber-free), then load
        # register-homed variables from the slots
        arg_locs = SysVABI.classify_args(
            ["float" if p.ctype.is_float else "int" for p in self.fn.params]
        )
        # stack-passed args sit above the saved registers and our frame
        entry_disp = self.frame_size + 8 * len(used_callee)
        for p, loc in zip(self.fn.params, arg_locs):
            if isinstance(loc, int):
                self.emit(instr("mov", Mem(base=RSP, disp=entry_disp + loc),
                                RAX, comment=f"stack arg {p.name}"))
                self.emit(instr("mov", RAX, self._slot_mem(p.name)))
            elif loc.kind == "vec":
                self.emit(self.map.store_scalar(loc, self._slot_mem(p.name),
                                                comment=f"arg {p.name}"))
            else:
                self.emit(instr("mov", loc, self._slot_mem(p.name),
                                comment=f"arg {p.name}"))
        for p in self.fn.params:
            home = self.gp_home.get(p.name)
            if home is not None:
                self.emit(instr("mov", self._slot_mem(p.name), home,
                                comment=f"home {p.name}"))

    def _epilogue(self) -> None:
        if self._used_epilogue_label:
            self.items.append(Label(self._epilogue_label))
        if self.arch.simd == "avx" and self.arch.vector_bytes == 32:
            self.emit(instr("vzeroupper"))
        if self.frame_size:
            self.emit(instr("add", Imm(self.frame_size), RSP))
        from ..isa.registers import GP
        for name in reversed(self._saved):
            self.emit(instr("pop", GP[name]))
        self.emit(instr("ret"))

    def _gen_block(self, block: C.Block) -> None:
        for stmt in block.stmts:
            self._gen_stmt(stmt)
            pos = self.liveness.position_of(stmt)
            if pos:
                self.alloc.release_dead(self.liveness, pos)

    def _gen_stmt(self, stmt: C.Node) -> None:
        if isinstance(stmt, C.TaggedRegion):
            self.comment(f"--- {stmt.template} ---")
            payload = stmt.binding["payload"]
            OPTIMIZERS[stmt.template](self, stmt, payload)
            return
        if isinstance(stmt, C.Decl):
            return  # storage decided statically; initializers were hoisted
        if isinstance(stmt, C.For):
            self._gen_for(stmt)
            return
        if isinstance(stmt, C.If):
            self._gen_if(stmt)
            return
        if isinstance(stmt, C.Block):
            self._gen_block(stmt)
            return
        if isinstance(stmt, C.Return):
            self._gen_return(stmt)
            return
        if isinstance(stmt, C.ExprStmt):
            self._gen_expr_stmt(stmt)
            return
        if isinstance(stmt, C.Assign):
            self._gen_assign(stmt)
            return
        raise CodegenError(f"cannot translate statement {type(stmt).__name__}")

    def _gen_assign(self, stmt: C.Assign) -> None:
        # float side?
        lhs_t = self.symtab.expr_type(stmt.lhs)
        if lhs_t.is_float:
            self.float_assign(stmt)
            return

        if not isinstance(stmt.lhs, C.Id):
            raise CodegenError(f"integer store through {stmt.lhs} unsupported")
        var = stmt.lhs.name
        is_ptr = lhs_t.is_pointer

        if stmt.op == "=":
            home = self.gp_home.get(var)
            # eval_ptr uses RAX internally for the integer part, so a
            # spilled pointer destination must evaluate into R11
            dest = home if home is not None else (R11 if is_ptr else RAX)
            if is_ptr:
                self.eval_ptr(stmt.rhs, dest)
            else:
                self.eval_int(stmt.rhs, dest)
            if home is None:
                self.emit(instr("mov", dest, self._slot_mem(var)))
            return

        if stmt.op in ("+=", "-="):
            rhs = C.const_fold(stmt.rhs)
            home = self.gp_home.get(var)
            if is_ptr:
                elem = lhs_t.pointee().sizeof
                if isinstance(rhs, C.IntLit):
                    disp = rhs.value * elem
                    target = home if home is not None else self._slot_mem(var)
                    self.emit(instr("add" if stmt.op == "+=" else "sub",
                                    Imm(disp), target,
                                    comment=f"{var} {stmt.op} {rhs.value}"))
                    return
                self.eval_int(rhs, RAX)
                if stmt.op == "-=":
                    self.emit(instr("neg", RAX))
                if home is not None:
                    self.emit(instr("lea", Mem(base=home, index=RAX, scale=elem),
                                    home, comment=f"{var} += ..."))
                else:
                    self.emit(instr("mov", self._slot_mem(var), R11))
                    self.emit(instr("lea", Mem(base=R11, index=RAX, scale=elem), R11))
                    self.emit(instr("mov", R11, self._slot_mem(var)))
                return
            # integer compound
            if isinstance(rhs, C.IntLit):
                target = home if home is not None else self._slot_mem(var)
                self.emit(instr("add" if stmt.op == "+=" else "sub",
                                Imm(rhs.value), target))
                return
            self.eval_int(rhs, RAX)
            target = home if home is not None else self._slot_mem(var)
            self.emit(instr("add" if stmt.op == "+=" else "sub", RAX, target))
            return

        if stmt.op == "*=":
            home = self.gp_home.get(var)
            self.eval_int(C.BinOp("*", stmt.lhs.clone(), stmt.rhs),
                          home if home is not None else RAX)
            if home is None:
                self.emit(instr("mov", RAX, self._slot_mem(var)))
            return
        raise CodegenError(f"unsupported assignment operator {stmt.op!r}")

    def _gen_expr_stmt(self, stmt: C.ExprStmt) -> None:
        e = stmt.expr
        if isinstance(e, C.Call) and e.func in PREFETCH_FUNCS:
            (arg,) = e.args
            mem_op = self._prefetch_addr(arg)
            self.emit(instr(_PREFETCH_MNEMONIC[e.func], mem_op))
            return
        raise CodegenError(f"cannot translate expression statement {e}")

    def _prefetch_addr(self, e: C.Node) -> Mem:
        e = C.const_fold(e)
        if isinstance(e, C.Id):
            return Mem(base=self.gp_read(e.name))
        if (
            isinstance(e, C.BinOp)
            and e.op in ("+", "-")
            and isinstance(e.left, C.Id)
            and isinstance(C.const_fold(e.right), C.IntLit)
        ):
            elem = self.symtab.expr_type(e.left).pointee().sizeof
            off = C.const_fold(e.right).value * elem
            if e.op == "-":
                off = -off
            return Mem(base=self.gp_read(e.left.name), disp=off)
        self.eval_ptr(e, RAX)
        return Mem(base=RAX)

    def _gen_for(self, loop: C.For) -> None:
        body_label = self.new_label("body")
        check_label = self.new_label("check")
        if loop.init is not None:
            self._gen_stmt(loop.init)
        self.emit(instr("jmp", LabelRef(check_label)))
        self.items.append(Label(body_label))
        self._gen_block(loop.body)
        if loop.step is not None:
            self._gen_stmt(loop.step)
        self.items.append(Label(check_label))
        self._gen_cond_branch(loop.cond, body_label)

    def _gen_cond_branch(self, cond: Optional[C.Node], target: str,
                         negate: bool = False) -> None:
        if cond is None:
            self.emit(instr("jmp", LabelRef(target)))
            return
        if not (isinstance(cond, C.BinOp) and cond.op in _CMP_JCC):
            raise CodegenError(f"unsupported loop condition {cond}")
        jcc = _CMP_JCC[cond.op]
        if negate:
            jcc = {"jl": "jge", "jle": "jg", "jg": "jle", "jge": "jl",
                   "je": "jne", "jne": "je"}[jcc]
        left = cond.left
        right = C.const_fold(cond.right)
        if not isinstance(left, C.Id):
            raise CodegenError("condition LHS must be a variable")
        lreg = self.gp_read(left.name, scratch=R11)
        if isinstance(right, C.IntLit):
            self.emit(instr("cmp", Imm(right.value), lreg))
        elif isinstance(right, C.Id) and right.name in self.gp_home:
            self.emit(instr("cmp", self.gp_home[right.name], lreg))
        else:
            self.eval_int(right, RAX)
            self.emit(instr("cmp", RAX, lreg))
        self.emit(instr(jcc, LabelRef(target)))

    def _gen_if(self, stmt: C.If) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif")
        target = else_label if stmt.els is not None else end_label
        self._gen_cond_branch(stmt.cond, target, negate=True)
        self._gen_block(stmt.then)
        if stmt.els is not None:
            self.emit(instr("jmp", LabelRef(end_label)))
            self.items.append(Label(else_label))
            self._gen_block(stmt.els)
        self.items.append(Label(end_label))

    def _gen_return(self, stmt: C.Return) -> None:
        if stmt.value is not None:
            t = self.symtab.expr_type(stmt.value)
            if t.is_float:
                src, cleanup = self._eval_float(stmt.value)
                if src.index != 0:
                    self.emit(self.map.mov_scalar(src, xmm(0)))
                cleanup()
            else:
                self.eval_int(stmt.value, RAX)
        # single trailing return is the common case; otherwise jump
        # to the shared epilogue
        last_stmt = self.fn.body.stmts[-1] if self.fn.body.stmts else None
        if last_stmt is not stmt:
            self._used_epilogue_label = True
            self.emit(instr("jmp", LabelRef(self._epilogue_label)))


def generate_assembly_items(fn: C.FuncDef, arch: ArchSpec, plan: VectorPlan,
                            schedule: bool = True,
                            unified_regalloc: bool = False) -> List[Item]:
    """Full Assembly Kernel Generator pass over a tagged function."""
    return KernelCodeGen(fn, arch, plan, schedule=schedule,
                         unified_regalloc=unified_regalloc).gen_function()
