"""Optimization templates (paper §3, Fig. 3).

Each template formulates a commonly occurring instruction sequence within
the low-level C of DLA kernels:

- ``mmCOMP(A, idx1, B, idx2, res)``  — 4 statements: Load, Load, Mul, Add.
- ``mmSTORE(C, idx, res)``           — 3 statements: Load, Add, Store.
- ``mvCOMP(A, idx1, B, idx2, scal)`` — 5 statements: Load, Load, Mul, Add, Store.
- ``mmUnrolledCOMP``                 — n1 x n2 grid of mmCOMP repetitions.
- ``mmUnrolledSTORE``                — n consecutive mmSTOREs on one array.
- ``mvUnrolledCOMP``                 — n consecutive mvCOMPs.

This module defines the match patterns for the three *base* templates and
the dataclasses describing matched instances.  Detecting the unrolled
(merged) templates from runs of base matches is the Template Identifier's
job (:mod:`repro.core.identifier`).

Beyond the paper's six templates we add one auxiliary template,
``sumREDUCE`` (a sum of split accumulators back into a scalar), needed to
close the DOT kernel after accumulator splitting; it is documented as a
reproduction extension in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..poet import cast as C
from ..poet.pattern import Bind, match

# ---------------------------------------------------------------------------
# Base template patterns
# ---------------------------------------------------------------------------

#: mmCOMP (Fig. 3): tmp0=A[idx1]; tmp1=B[idx2]; tmp2=tmp0*tmp1; res=res+tmp2
MM_COMP_PATTERN = [
    C.Assign(Bind("tmp0", C.Id), "=", C.Index(Bind("A", C.Id), Bind("idx1"))),
    C.Assign(Bind("tmp1", C.Id), "=", C.Index(Bind("B", C.Id), Bind("idx2"))),
    C.Assign(Bind("tmp2", C.Id), "=",
             C.BinOp("*", Bind("tmp0", C.Id), Bind("tmp1", C.Id))),
    C.Assign(Bind("res", C.Id), "=",
             C.BinOp("+", Bind("res", C.Id), Bind("tmp2", C.Id))),
]

#: mmSTORE (Fig. 3): tmp0=C[idx]; res=res+tmp0; C[idx]=res
MM_STORE_PATTERN = [
    C.Assign(Bind("tmp0", C.Id), "=", C.Index(Bind("C", C.Id), Bind("idx"))),
    C.Assign(Bind("res", C.Id), "=",
             C.BinOp("+", Bind("res", C.Id), Bind("tmp0", C.Id))),
    C.Assign(C.Index(Bind("C", C.Id), Bind("idx")), "=", Bind("res", C.Id)),
]

#: mvSCALE (extension template, §7): tmp0=X[idx]; tmp0=tmp0*scal; X[idx]=tmp0
MV_SCALE_PATTERN = [
    C.Assign(Bind("tmp0", C.Id), "=", C.Index(Bind("X", C.Id), Bind("idx"))),
    C.Assign(Bind("tmp0", C.Id), "=",
             C.BinOp("*", Bind("tmp0", C.Id), Bind("scal", C.Id))),
    C.Assign(C.Index(Bind("X", C.Id), Bind("idx")), "=", Bind("tmp0", C.Id)),
]

#: mvCOMP (Fig. 3): tmp0=A[idx1]; tmp1=B[idx2]; tmp0=tmp0*scal;
#:                  tmp1=tmp1+tmp0; B[idx2]=tmp1
MV_COMP_PATTERN = [
    C.Assign(Bind("tmp0", C.Id), "=", C.Index(Bind("A", C.Id), Bind("idx1"))),
    C.Assign(Bind("tmp1", C.Id), "=", C.Index(Bind("B", C.Id), Bind("idx2"))),
    C.Assign(Bind("tmp0", C.Id), "=",
             C.BinOp("*", Bind("tmp0", C.Id), Bind("scal", C.Id))),
    C.Assign(Bind("tmp1", C.Id), "=",
             C.BinOp("+", Bind("tmp1", C.Id), Bind("tmp0", C.Id))),
    C.Assign(C.Index(Bind("B", C.Id), Bind("idx2")), "=", Bind("tmp1", C.Id)),
]


# ---------------------------------------------------------------------------
# Matched instances
# ---------------------------------------------------------------------------


@dataclass
class MMComp:
    """One matched mmCOMP: ``res += A[a_off] * B[b_off]``."""

    a_ptr: str
    a_off: Optional[int]  # integer offset when subscript is a literal
    b_ptr: str
    b_off: Optional[int]
    res: str
    tmps: Tuple[str, str, str]  # tmp0, tmp1, tmp2
    a_idx: C.Node = None  # original subscript expressions
    b_idx: C.Node = None


@dataclass
class MMStore:
    """One matched mmSTORE: ``C[off] += res``."""

    c_ptr: str
    c_off: Optional[int]
    res: str
    tmp: str
    c_idx: C.Node = None


@dataclass
class MVComp:
    """One matched mvCOMP: ``B[b_off] += A[a_off] * scal``."""

    a_ptr: str
    a_off: Optional[int]
    b_ptr: str
    b_off: Optional[int]
    scal: str
    tmps: Tuple[str, str]  # tmp0 (A load / product), tmp1 (B load / sum)
    a_idx: C.Node = None
    b_idx: C.Node = None


@dataclass
class MVScale:
    """One matched mvSCALE: ``X[off] *= scal`` (extension template)."""

    x_ptr: str
    x_off: Optional[int]
    scal: str
    tmp: str
    x_idx: C.Node = None


def _lit(e: C.Node) -> Optional[int]:
    return e.value if isinstance(e, C.IntLit) else None


def match_mm_comp(stmts: List[C.Node], pos: int) -> Optional[MMComp]:
    """Match an mmCOMP starting at ``stmts[pos]``."""
    window = stmts[pos:pos + 4]
    if len(window) < 4:
        return None
    b = match(MM_COMP_PATTERN, window)
    if b is None:
        return None
    # the product destination must be a fresh temp, distinct from the loads
    names = {b["tmp0"].name, b["tmp1"].name}
    if b["tmp2"].name in names or b["res"].name in names:
        return None
    if b["tmp2"].name == b["res"].name:
        return None
    return MMComp(
        a_ptr=b["A"].name,
        a_off=_lit(b["idx1"]),
        b_ptr=b["B"].name,
        b_off=_lit(b["idx2"]),
        res=b["res"].name,
        tmps=(b["tmp0"].name, b["tmp1"].name, b["tmp2"].name),
        a_idx=b["idx1"],
        b_idx=b["idx2"],
    )


def match_mm_store(stmts: List[C.Node], pos: int) -> Optional[MMStore]:
    window = stmts[pos:pos + 3]
    if len(window) < 3:
        return None
    b = match(MM_STORE_PATTERN, window)
    if b is None:
        return None
    if b["tmp0"].name == b["res"].name:
        return None
    return MMStore(
        c_ptr=b["C"].name,
        c_off=_lit(b["idx"]),
        res=b["res"].name,
        tmp=b["tmp0"].name,
        c_idx=b["idx"],
    )


def match_mv_scale(stmts: List[C.Node], pos: int) -> Optional[MVScale]:
    window = stmts[pos:pos + 3]
    if len(window) < 3:
        return None
    b = match(MV_SCALE_PATTERN, window)
    if b is None:
        return None
    if b["scal"].name == b["tmp0"].name:
        return None
    return MVScale(
        x_ptr=b["X"].name,
        x_off=_lit(b["idx"]),
        scal=b["scal"].name,
        tmp=b["tmp0"].name,
        x_idx=b["idx"],
    )


def match_mv_comp(stmts: List[C.Node], pos: int) -> Optional[MVComp]:
    window = stmts[pos:pos + 5]
    if len(window) < 5:
        return None
    b = match(MV_COMP_PATTERN, window)
    if b is None:
        return None
    if b["tmp0"].name == b["tmp1"].name:
        return None
    if b["scal"].name in (b["tmp0"].name, b["tmp1"].name):
        return None
    return MVComp(
        a_ptr=b["A"].name,
        a_off=_lit(b["idx1"]),
        b_ptr=b["B"].name,
        b_off=_lit(b["idx2"]),
        scal=b["scal"].name,
        tmps=(b["tmp0"].name, b["tmp1"].name),
        a_idx=b["idx1"],
        b_idx=b["idx2"],
    )


# ---------------------------------------------------------------------------
# Region payloads (stored in TaggedRegion.binding)
# ---------------------------------------------------------------------------


@dataclass
class UnrolledComp:
    """An mmUnrolledCOMP region.

    ``kind`` is ``"grid"`` for the full n1 x n2 combination structure of the
    paper (GEMM) or ``"paired"`` for diagonal offsets (DOT: A and B advance
    together).  ``comps`` are ordered B-major for grids (all A offsets for
    the first B lane first), matching the store order of the C tile.
    """

    comps: List[MMComp]
    kind: str  # "grid" | "paired"
    n1: int  # number of distinct A offsets (grid) or pair count (paired)
    n2: int  # number of distinct B lanes (grid) / 1 (paired)
    a_ptr: str = ""
    a_contiguous: bool = False
    b_contiguous: bool = False  # True when B lanes are offsets of one pointer


@dataclass
class UnrolledStore:
    """An mmUnrolledSTORE region: n consecutive offsets of one array."""

    stores: List[MMStore]
    c_ptr: str = ""

    def __post_init__(self) -> None:
        if self.stores and not self.c_ptr:
            self.c_ptr = self.stores[0].c_ptr


@dataclass
class UnrolledMVComp:
    """An mvUnrolledCOMP region: n consecutive offsets of A and B."""

    comps: List[MVComp]
    a_ptr: str = ""
    b_ptr: str = ""
    scal: str = ""

    def __post_init__(self) -> None:
        if self.comps:
            self.a_ptr = self.comps[0].a_ptr
            self.b_ptr = self.comps[0].b_ptr
            self.scal = self.comps[0].scal


@dataclass
class UnrolledMVScale:
    """An mvUnrolledSCALE region: n consecutive offsets of one array."""

    scales: List[MVScale]
    x_ptr: str = ""
    scal: str = ""

    def __post_init__(self) -> None:
        if self.scales:
            self.x_ptr = self.scales[0].x_ptr
            self.scal = self.scales[0].scal


TEMPLATE_NAMES = (
    "mmCOMP",
    "mmSTORE",
    "mvCOMP",
    "mmUnrolledCOMP",
    "mmUnrolledSTORE",
    "mvUnrolledCOMP",
    "sumREDUCE",
    "mvSCALE",
    "mvUnrolledSCALE",
)
