"""The Template Optimizer (paper §2.3, §3).

One specialized optimizer per template, collectively applying SIMD
vectorization, register allocation, and instruction selection/scheduling.
The ``OPTIMIZERS`` lookup table at the bottom is the ``Optimizer[...]``
table of paper Fig. 2; the Assembly Kernel Generator dispatches each
tagged region through it.

Every optimizer receives the shared code-generation context ``cg``
(providing the architecture mapping rules, the vector register allocator
with its global ``reg_table``, the vectorization plan, and addressing
helpers) plus the region and its structured payload.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..isa.operands import Mem
from ..isa.registers import Register
from ..poet import cast as C
from .identifier import SumReduce
from .regalloc import array_root
from .templates import MMComp, MMStore, MVComp, UnrolledComp, UnrolledMVComp, UnrolledStore


# ---------------------------------------------------------------------------
# scalar base templates
# ---------------------------------------------------------------------------


def _emit_scalar_comp(cg, comp: MMComp) -> None:
    """mmCOMP (paper §3.1, Fig. 4): Load, Load, Mul+Add via Table 1."""
    tmp0, tmp1, tmp2 = comp.tmps
    r0 = cg.alloc.alloc(tmp0, array_root(comp.a_ptr)).reg
    cg.emit(cg.map.load_scalar(cg.addr(comp.a_ptr, comp.a_off, comp.a_idx), r0,
                               comment=f"{tmp0} = {comp.a_ptr}[{comp.a_off}]"))
    r1 = cg.alloc.alloc(tmp1, array_root(comp.b_ptr)).reg
    cg.emit(cg.map.load_scalar(cg.addr(comp.b_ptr, comp.b_off, comp.b_idx), r1,
                               comment=f"{tmp1} = {comp.b_ptr}[{comp.b_off}]"))
    racc = cg.scalar_reg(comp.res)
    if cg.arch.has_fma:
        cg.emit(cg.map.mul_add_scalar(r0, r1, racc,
                                      comment=f"{comp.res} += {tmp0}*{tmp1}"))
    else:
        rt = cg.alloc.alloc(tmp2).reg
        cg.emit(cg.map.mul_add_scalar(r0, r1, racc, tmp=rt,
                                      comment=f"{comp.res} += {tmp0}*{tmp1}"))
        cg.alloc.release_var(tmp2)
    cg.alloc.release_var(tmp0)
    cg.alloc.release_var(tmp1)


def optimize_mm_comp(cg, region: C.TaggedRegion, payload: UnrolledComp) -> None:
    for comp in payload.comps:
        _emit_scalar_comp(cg, comp)


def _emit_scalar_store(cg, store: MMStore) -> None:
    """mmSTORE (paper §3.2, Fig. 5): Load, Add, Store via Table 2."""
    rt = cg.alloc.alloc(store.tmp, array_root(store.c_ptr)).reg
    addr = cg.addr(store.c_ptr, store.c_off, store.c_idx)
    cg.emit(cg.map.load_scalar(addr, rt,
                               comment=f"{store.tmp} = {store.c_ptr}[{store.c_off}]"))
    racc, cleanup = cg.read_scalar_value(store.res)
    cg.emit(cg.map.add_scalar(rt, racc))
    addr = cg.addr(store.c_ptr, store.c_off, store.c_idx)
    cg.emit(cg.map.store_scalar(racc, addr,
                                comment=f"{store.c_ptr}[{store.c_off}] = {store.res}"))
    cleanup()
    cg.alloc.release_var(store.tmp)


def optimize_mm_store(cg, region: C.TaggedRegion, payload: UnrolledStore) -> None:
    for store in payload.stores:
        _emit_scalar_store(cg, store)


def _emit_scalar_mv(cg, comp: MVComp) -> None:
    """mvCOMP (paper §3.3, Fig. 6): Load, Load, Mul, Add, Store via Table 3."""
    tmp0, tmp1 = comp.tmps
    r0 = cg.alloc.alloc(tmp0, array_root(comp.a_ptr)).reg
    cg.emit(cg.map.load_scalar(cg.addr(comp.a_ptr, comp.a_off, comp.a_idx), r0,
                               comment=f"{tmp0} = {comp.a_ptr}[{comp.a_off}]"))
    r1 = cg.alloc.alloc(tmp1, array_root(comp.b_ptr)).reg
    cg.emit(cg.map.load_scalar(cg.addr(comp.b_ptr, comp.b_off, comp.b_idx), r1,
                               comment=f"{tmp1} = {comp.b_ptr}[{comp.b_off}]"))
    rscal = cg.scalar_reg(comp.scal)
    if cg.arch.has_fma:
        # tmp1 += tmp0 * scal collapses to one FMA (Table 3 lines 3-4)
        cg.emit(cg.map.mul_add_scalar(r0, rscal, r1,
                                      comment=f"{tmp1} += {tmp0}*{comp.scal}"))
    else:
        cg.emit(cg.map.mul_scalar(rscal, r0))  # tmp0 = tmp0*scal
        cg.emit(cg.map.add_scalar(r0, r1))  # tmp1 = tmp1+tmp0
    cg.emit(cg.map.store_scalar(r1, cg.addr(comp.b_ptr, comp.b_off, comp.b_idx),
                                comment=f"{comp.b_ptr}[{comp.b_off}] = {tmp1}"))
    cg.alloc.release_var(tmp0)
    cg.alloc.release_var(tmp1)


def optimize_mv_comp(cg, region: C.TaggedRegion, payload: UnrolledMVComp) -> None:
    for comp in payload.comps:
        _emit_scalar_mv(cg, comp)


# ---------------------------------------------------------------------------
# mmUnrolledCOMP (paper §3.4): the Vdup and Shuf vectorization methods
# ---------------------------------------------------------------------------


def optimize_unrolled_comp(cg, region: C.TaggedRegion,
                           payload: UnrolledComp) -> None:
    plan = cg.plan.plan_for(region)
    if plan.strategy == "vdup":
        _emit_vdup(cg, payload, plan.n)
    elif plan.strategy == "shuf":
        _emit_shuf(cg, payload, plan.n)
    elif plan.strategy == "paired":
        _emit_paired(cg, payload, plan.n)
    else:
        optimize_mm_comp(cg, region, payload)


def _emit_vdup(cg, payload: UnrolledComp, n: int) -> None:
    """Vld-Vdup-Vmul-Vadd (paper Fig. 8).

    Vector A loads are shared across B lanes; each B element is duplicated
    into every lane of one register with Vdup.
    """
    # group comps by B lane, preserving region order for the B lanes
    by_b: Dict[Tuple[str, int], List[MMComp]] = {}
    b_order: List[Tuple[str, int]] = []
    for comp in payload.comps:
        key = (comp.b_ptr, comp.b_off)
        if key not in by_b:
            by_b[key] = []
            b_order.append(key)
        by_b[key].append(comp)

    # A vector loads, deduplicated across B lanes and hoisted to the top
    # (their latency is hidden behind the first broadcasts)
    a_vecs: Dict[Tuple[str, int], Register] = {}
    for key in b_order:
        for comp in by_b[key]:
            akey = (comp.a_ptr, comp.a_off)
            if akey not in a_vecs and (comp.a_off or 0) % n == 0:
                reg = cg.alloc.alloc_temp_reg(array_root(comp.a_ptr))
                cg.emit(cg.map.vload(cg.addr(comp.a_ptr, comp.a_off), reg,
                                     comment=f"Vld {comp.a_ptr}"
                                             f"[{comp.a_off}..{comp.a_off + n - 1}]"))
                a_vecs[akey] = reg

    # B registers ROTATE: each lane's broadcast register is released as
    # soon as its FMAs are emitted, so even wide tiles (e.g. 12x4 with 12
    # accumulators + 3 A vectors) fit the 16-register file — the register
    # economics of hand-written kernels.
    for key in b_order:
        col = sorted(by_b[key], key=lambda c: c.a_off or 0)
        bv = cg.alloc.alloc_temp_reg(array_root(key[0]))
        cg.emit(cg.map.vdup(cg.addr(key[0], key[1]), bv,
                            comment=f"Vdup {key[0]}[{key[1]}]"))
        for chunk_start in range(0, len(col), n):
            chunk = col[chunk_start:chunk_start + n]
            av = a_vecs[(chunk[0].a_ptr, chunk[0].a_off)]
            acc = cg.pack_reg([c.res for c in chunk])
            comment = f"acc({chunk[0].res}..) += A*{key[0]}[{key[1]}]"
            if cg.arch.has_fma:
                cg.emit(cg.map.vmul_add(av, bv, acc, comment=comment))
            else:
                rt = cg.alloc.alloc_temp_reg()
                cg.emit(cg.map.vmul_add(av, bv, acc, tmp=rt, comment=comment))
                cg.alloc.free_reg(rt)
        cg.alloc.free_reg(bv)
    for reg in a_vecs.values():
        cg.alloc.free_reg(reg)


def _emit_shuf(cg, payload: UnrolledComp, n: int) -> None:
    """Vld-Vld-Vmul-Vadd + Shuf-Vmul-Vadd (paper Fig. 9), n in (2, 4).

    Accumulator pack p collects ``res(a_m, b_{m XOR p})`` in lane m: the
    n-1 shuffles are the in-pair swap (``Shuf imm0`` / ``vpermilpd``),
    and for n=4 the 128-bit half swap (``vperm2f128``) plus their
    composition.  The store optimizer un-permutes.
    """
    assert n in (2, 4), "Shuf method implemented for 2- and 4-lane vectors"
    grid = {}
    a_lanes = sorted({(c.a_ptr, c.a_off) for c in payload.comps},
                     key=lambda t: t[1] or 0)
    b_lanes = sorted({(c.b_ptr, c.b_off) for c in payload.comps},
                     key=lambda t: t[1] or 0)
    for comp in payload.comps:
        ar = next(i for i, t in enumerate(a_lanes) if t == (comp.a_ptr, comp.a_off))
        br = next(i for i, t in enumerate(b_lanes) if t == (comp.b_ptr, comp.b_off))
        grid[(ar, br)] = comp.res

    a_ptr, a_off = a_lanes[0]
    b_ptr, b_off = b_lanes[0]
    av = cg.alloc.alloc_temp_reg(array_root(a_ptr))
    cg.emit(cg.map.vload(cg.addr(a_ptr, a_off), av,
                         comment=f"Vld {a_ptr}[{a_off}..{a_off + n - 1}]"))
    bv = cg.alloc.alloc_temp_reg(array_root(b_ptr))
    cg.emit(cg.map.vload(cg.addr(b_ptr, b_off), bv,
                         comment=f"Vld {b_ptr}[{b_off}..{b_off + n - 1}]"))

    accs = [cg.pack_reg([grid[(m, m ^ p)] for m in range(n)])
            for p in range(n)]

    def fma(a, b, acc, comment):
        if cg.arch.has_fma:
            cg.emit(cg.map.vmul_add(a, b, acc, comment=comment))
        else:
            rt = cg.alloc.alloc_temp_reg()
            cg.emit(cg.map.vmul_add(a, b, acc, tmp=rt, comment=comment))
            cg.alloc.free_reg(rt)

    fma(av, bv, accs[0], "p=0: acc[m] += a_m*b_m")
    rot1 = cg.alloc.alloc_temp_reg(array_root(b_ptr))
    cg.emit(cg.map.shuf_swap_adjacent(bv, rot1))  # Shuf imm0 (Fig. 9 line 5)
    fma(av, rot1, accs[1], "p=1: acc[m] += a_m*b_{m^1}")
    if n == 4:
        rot2 = cg.alloc.alloc_temp_reg(array_root(b_ptr))
        cg.emit(cg.map.shuf_swap_lanes(bv, rot2))
        fma(av, rot2, accs[2], "p=2: acc[m] += a_m*b_{m^2}")
        cg.emit(cg.map.shuf_swap_adjacent(rot2, rot1))  # reuse rot1 for p=3
        fma(av, rot1, accs[3], "p=3: acc[m] += a_m*b_{m^3}")
        cg.alloc.free_reg(rot2)

    cg.alloc.free_reg(av)
    cg.alloc.free_reg(bv)
    cg.alloc.free_reg(rot1)


def _emit_paired(cg, payload: UnrolledComp, n: int) -> None:
    """Paired lanes (DOT): Vld-Vld-Vmul-Vadd with vector accumulators."""
    comps = payload.comps  # already sorted by A offset
    for start in range(0, len(comps), n):
        chunk = comps[start:start + n]
        av = cg.alloc.alloc_temp_reg(array_root(chunk[0].a_ptr))
        cg.emit(cg.map.vload(cg.addr(chunk[0].a_ptr, chunk[0].a_off), av,
                             comment=f"Vld {chunk[0].a_ptr}[{chunk[0].a_off}..]"))
        bv = cg.alloc.alloc_temp_reg(array_root(chunk[0].b_ptr))
        cg.emit(cg.map.vload(cg.addr(chunk[0].b_ptr, chunk[0].b_off), bv,
                             comment=f"Vld {chunk[0].b_ptr}[{chunk[0].b_off}..]"))
        acc = cg.pack_reg([c.res for c in chunk])
        if cg.arch.has_fma:
            cg.emit(cg.map.vmul_add(av, bv, acc))
        else:
            rt = cg.alloc.alloc_temp_reg()
            cg.emit(cg.map.vmul_add(av, bv, acc, tmp=rt))
            cg.alloc.free_reg(rt)
        cg.alloc.free_reg(av)
        cg.alloc.free_reg(bv)


# ---------------------------------------------------------------------------
# mmUnrolledSTORE (paper §3.5): Vld-Vadd-Vst
# ---------------------------------------------------------------------------


def optimize_unrolled_store(cg, region: C.TaggedRegion,
                            payload: UnrolledStore) -> None:
    plan = cg.plan.plan_for(region)
    if plan.strategy != "vstore":
        optimize_mm_store(cg, region, payload)
        return
    n = plan.n
    stores = sorted(payload.stores, key=lambda s: s.c_off or 0)
    for start in range(0, len(stores), n):
        chunk = stores[start:start + n]
        ptr, off = chunk[0].c_ptr, chunk[0].c_off
        acc, cleanup = _combined_acc(cg, [s.res for s in chunk])
        cvec = cg.alloc.alloc_temp_reg(array_root(ptr))
        cg.emit(cg.map.vload(cg.addr(ptr, off), cvec,
                             comment=f"Vld {ptr}[{off}..{off + n - 1}]"))
        cg.emit(cg.map.vadd(acc, cvec))
        cg.emit(cg.map.vstore(cvec, cg.addr(ptr, off),
                              comment=f"Vst {ptr}[{off}..{off + n - 1}]"))
        cg.alloc.free_reg(cvec)
        cleanup()


def _combined_acc(cg, members: List[str]):
    """Register holding ``members`` in lane order; un-permutes shuf packs.

    Returns ``(register, cleanup)``; cleanup releases any temp created.
    """
    loc0 = cg.alloc.loc(members[0])
    assert loc0 is not None and loc0.pack is not None, \
        f"accumulator {members[0]!r} is not packed"
    pack0 = loc0.pack
    if pack0.layout == "direct" and pack0.members == members:
        return pack0.reg, (lambda: None)
    locs = [cg.alloc.loc(m) for m in members]
    assert all(loc is not None and loc.pack is not None for loc in locs)
    if len(members) == 2:
        # column j from the diagonal/anti-diagonal pair: one shufpd
        imm = (locs[0].lane & 1) | ((locs[1].lane & 1) << 1)
        dst = cg.alloc.alloc_temp_reg()
        cg.emit(cg.map.shufpd_combine(imm, locs[0].pack.reg,
                                      locs[1].pack.reg, dst))
        return dst, (lambda: cg.alloc.free_reg(dst))
    # n = 4: member m must sit in lane m of its (XOR-permuted) pack;
    # two blends pick the per-pair lanes, one vperm2f128 joins the halves
    assert len(members) == 4, "shuf un-permutation implemented for n in (2, 4)"
    assert all(loc.lane == m for m, loc in enumerate(locs)), \
        "unexpected shuf lane placement"
    t0 = cg.alloc.alloc_temp_reg()
    cg.emit(cg.map.vblend(0b1010, locs[0].pack.reg, locs[1].pack.reg, t0))
    t1 = cg.alloc.alloc_temp_reg()
    cg.emit(cg.map.vblend(0b1010, locs[2].pack.reg, locs[3].pack.reg, t1))
    cg.emit(cg.map.vperm128_lo_hi(t0, t1, t0))
    cg.alloc.free_reg(t1)
    return t0, (lambda: cg.alloc.free_reg(t0))


# ---------------------------------------------------------------------------
# mvUnrolledCOMP (paper §3.6): Vld-Vld-Vmul-Vadd-Vst
# ---------------------------------------------------------------------------


def optimize_unrolled_mv(cg, region: C.TaggedRegion,
                         payload: UnrolledMVComp) -> None:
    plan = cg.plan.plan_for(region)
    if plan.strategy != "mv":
        optimize_mv_comp(cg, region, payload)
        return
    n = plan.n
    comps = sorted(payload.comps, key=lambda c: c.a_off or 0)
    rscal = cg.scalar_reg(payload.scal)  # broadcast-materialized by the plan
    for start in range(0, len(comps), n):
        chunk = comps[start:start + n]
        a_ptr, a_off = chunk[0].a_ptr, chunk[0].a_off
        b_ptr, b_off = chunk[0].b_ptr, chunk[0].b_off
        av = cg.alloc.alloc_temp_reg(array_root(a_ptr))
        cg.emit(cg.map.vload(cg.addr(a_ptr, a_off), av,
                             comment=f"Vld {a_ptr}[{a_off}..{a_off + n - 1}]"))
        bv = cg.alloc.alloc_temp_reg(array_root(b_ptr))
        cg.emit(cg.map.vload(cg.addr(b_ptr, b_off), bv,
                             comment=f"Vld {b_ptr}[{b_off}..{b_off + n - 1}]"))
        if cg.arch.has_fma:
            cg.emit(cg.map.vmul_add(av, rscal, bv,
                                    comment=f"B += A*{payload.scal}"))
        else:
            rt = cg.alloc.alloc_temp_reg()
            cg.emit(cg.map.vmul_add(av, rscal, bv, tmp=rt,
                                    comment=f"B += A*{payload.scal}"))
            cg.alloc.free_reg(rt)
        cg.emit(cg.map.vstore(bv, cg.addr(b_ptr, b_off),
                              comment=f"Vst {b_ptr}[{b_off}..{b_off + n - 1}]"))
        cg.alloc.free_reg(av)
        cg.alloc.free_reg(bv)


# ---------------------------------------------------------------------------
# mvSCALE / mvUnrolledSCALE (extension template, paper §7 direction):
# X[idx] *= scal, vectorized as Vld-Vmul-Vst
# ---------------------------------------------------------------------------


def _emit_scalar_scale(cg, scale) -> None:
    rt = cg.alloc.alloc(scale.tmp, array_root(scale.x_ptr)).reg
    cg.emit(cg.map.load_scalar(cg.addr(scale.x_ptr, scale.x_off, scale.x_idx),
                               rt,
                               comment=f"{scale.tmp} = {scale.x_ptr}"
                                       f"[{scale.x_off}]"))
    rscal = cg.scalar_reg(scale.scal)
    cg.emit(cg.map.mul_scalar(rscal, rt))
    cg.emit(cg.map.store_scalar(rt, cg.addr(scale.x_ptr, scale.x_off,
                                            scale.x_idx),
                                comment=f"{scale.x_ptr}[{scale.x_off}] "
                                        f"*= {scale.scal}"))
    cg.alloc.release_var(scale.tmp)


def optimize_mv_scale(cg, region: C.TaggedRegion, payload) -> None:
    plan = cg.plan.plan_for(region)
    if plan.strategy != "scale":
        for scale in payload.scales:
            _emit_scalar_scale(cg, scale)
        return
    n = plan.n
    rscal = cg.scalar_reg(payload.scal)  # broadcast-materialized
    scales = payload.scales
    for start in range(0, len(scales), n):
        chunk = scales[start:start + n]
        ptr, off = chunk[0].x_ptr, chunk[0].x_off
        xv = cg.alloc.alloc_temp_reg(array_root(ptr))
        cg.emit(cg.map.vload(cg.addr(ptr, off), xv,
                             comment=f"Vld {ptr}[{off}..{off + n - 1}]"))
        if cg.arch.simd == "avx":
            v = cg.arch.vector_bytes
            from ..isa.instructions import instr as _instr

            cg.emit(_instr("vmulpd", rscal.as_width(v), xv.as_width(v),
                           xv.as_width(v)))
        else:
            cg.emit(cg.map.vmul_into(xv, rscal, xv))  # xv *= scal in place
        cg.emit(cg.map.vstore(xv, cg.addr(ptr, off),
                              comment=f"Vst {ptr}[{off}..{off + n - 1}]"))
        cg.alloc.free_reg(xv)


# ---------------------------------------------------------------------------
# sumREDUCE (reproduction extension; closes split-accumulator reductions)
# ---------------------------------------------------------------------------


def optimize_sum_reduce(cg, region: C.TaggedRegion, payload: SumReduce) -> None:
    plan = cg.plan.plan_for(region)
    rdst = cg.scalar_reg(payload.dst)
    if plan.strategy == "hreduce":
        done = set()
        for part in payload.parts:
            if part in done:
                continue
            pack = cg.alloc.loc(part).pack
            for m in pack.members:
                done.add(m)
            tmp = cg.alloc.alloc_temp_reg()
            cg.emit(cg.map.hreduce_to_scalar(pack.reg, tmp,
                                             comment=f"hsum({'+'.join(pack.members)})"))
            cg.emit(cg.map.add_scalar(pack.reg, rdst))
            cg.alloc.free_reg(tmp)
            for m in pack.members:
                cg.alloc.release_var(m)
    else:
        for part in payload.parts:
            rpart, cleanup = cg.read_scalar_value(part)
            cg.emit(cg.map.add_scalar(rpart, rdst))
            cleanup()
            cg.alloc.release_var(part)


#: The paper's ``Optimizer[template_name]`` lookup table (Fig. 2 line 6).
OPTIMIZERS = {
    "mmCOMP": optimize_mm_comp,
    "mmSTORE": optimize_mm_store,
    "mvCOMP": optimize_mv_comp,
    "mmUnrolledCOMP": optimize_unrolled_comp,
    "mmUnrolledSTORE": optimize_unrolled_store,
    "mvUnrolledCOMP": optimize_unrolled_mv,
    "sumREDUCE": optimize_sum_reduce,
    "mvSCALE": optimize_mv_scale,
    "mvUnrolledSCALE": optimize_mv_scale,
}
