"""The Template Identifier (paper §2.2).

Examines the optimized low-level C and tags every code fragment matching a
pre-defined template.  Uses the recursive statement-list traversal plus the
mini-POET pattern matcher, exactly as the paper implements it on top of
POET's built-in AST pattern matching.

Consecutive base-template matches are merged into the unrolled templates:

- a run of mmCOMPs whose (A-lane, B-lane) pairs form a complete n1 x n2
  cross product with distinct accumulators -> ``mmUnrolledCOMP`` (grid);
- a run of mmCOMPs advancing both arrays together with distinct
  accumulators -> ``mmUnrolledCOMP`` (paired; the DOT shape);
- consecutive mmSTOREs grouped per array pointer -> ``mmUnrolledSTORE``
  (paper §4.1.2: "these templates are divided into two mmUnrolledSTORE
  templates");
- consecutive mvCOMPs advancing both arrays -> ``mvUnrolledCOMP``.

Matched fragments are replaced in the AST by :class:`~repro.poet.cast.
TaggedRegion` nodes whose ``binding["payload"]`` holds the structured
instance description consumed by the Template Optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..poet import cast as C
from .templates import (
    MMComp,
    MMStore,
    MVComp,
    MVScale,
    UnrolledComp,
    UnrolledMVComp,
    UnrolledMVScale,
    UnrolledStore,
    match_mm_comp,
    match_mm_store,
    match_mv_comp,
    match_mv_scale,
)


@dataclass
class SumReduce:
    """Payload of a sumREDUCE region: ``dst += part0 + part1 + ...``."""

    dst: str
    parts: List[str]


def _flatten_float_sum(e: C.Node) -> Optional[List[str]]:
    """Flatten a tree of ``+`` over identifiers into a name list."""
    if isinstance(e, C.Id):
        return [e.name]
    if isinstance(e, C.BinOp) and e.op == "+":
        left = _flatten_float_sum(e.left)
        right = _flatten_float_sum(e.right)
        if left is None or right is None:
            return None
        return left + right
    return None


def match_sum_reduce(stmt: C.Node) -> Optional[SumReduce]:
    """Match ``dst += p0 + p1 + ...`` (at least two parts)."""
    if not (
        isinstance(stmt, C.Assign)
        and stmt.op == "+="
        and isinstance(stmt.lhs, C.Id)
        and isinstance(stmt.rhs, C.BinOp)
        and stmt.rhs.op == "+"
    ):
        return None
    parts = _flatten_float_sum(stmt.rhs)
    if parts is None or len(parts) < 2:
        return None
    return SumReduce(dst=stmt.lhs.name, parts=parts)


# ---------------------------------------------------------------------------
# run grouping
# ---------------------------------------------------------------------------

Lane = Tuple[str, Optional[int]]  # (pointer name, literal offset)


def _grid_prefix(comps: List[MMComp]) -> Optional[UnrolledComp]:
    """Longest prefix of ``comps`` forming a complete grid with unique res.

    Returns the UnrolledComp (B-major comp order) or None when even a
    trivial structure is absent.
    """
    # take comps until an accumulator repeats
    seen_res = set()
    chunk: List[MMComp] = []
    for comp in comps:
        if comp.res in seen_res:
            break
        seen_res.add(comp.res)
        chunk.append(comp)
    if not chunk:
        return None

    a_lanes = sorted({(c.a_ptr, c.a_off) for c in chunk},
                     key=lambda lane: (lane[0], lane[1] if lane[1] is not None else 0))
    b_lanes = sorted({(c.b_ptr, c.b_off) for c in chunk},
                     key=lambda lane: (lane[0], lane[1] if lane[1] is not None else 0))
    pairs = {((c.a_ptr, c.a_off), (c.b_ptr, c.b_off)) for c in chunk}

    # full cross product?
    if len(chunk) == len(a_lanes) * len(b_lanes) and len(pairs) == len(chunk):
        if all(
            ((a, b) in pairs) for a in a_lanes for b in b_lanes
        ):
            ordered = []
            by_pair = {((c.a_ptr, c.a_off), (c.b_ptr, c.b_off)): c for c in chunk}
            for b in b_lanes:  # B-major: all A offsets per B lane
                for a in a_lanes:
                    ordered.append(by_pair[(a, b)])
            return UnrolledComp(
                comps=ordered,
                kind="grid",
                n1=len(a_lanes),
                n2=len(b_lanes),
                a_ptr=a_lanes[0][0],
                a_contiguous=_contiguous(a_lanes),
                b_contiguous=_contiguous(b_lanes),
            )

    # paired structure (DOT): lanes advance together, all distinct
    if (
        len({(c.a_ptr, c.a_off) for c in chunk}) == len(chunk)
        and len({(c.b_ptr, c.b_off) for c in chunk}) == len(chunk)
    ):
        a_sorted = sorted(chunk, key=lambda c: (c.a_ptr, c.a_off or 0))
        return UnrolledComp(
            comps=a_sorted,
            kind="paired",
            n1=len(chunk),
            n2=1,
            a_ptr=chunk[0].a_ptr,
            a_contiguous=_contiguous([(c.a_ptr, c.a_off) for c in a_sorted]),
            b_contiguous=_contiguous([(c.b_ptr, c.b_off) for c in a_sorted]),
        )
    return None


def _contiguous(lanes: List[Lane]) -> bool:
    """True when all lanes are literal consecutive offsets of one pointer."""
    if any(off is None for _, off in lanes):
        return False
    ptrs = {p for p, _ in lanes}
    if len(ptrs) != 1:
        return False
    offs = sorted(off for _, off in lanes)
    return offs == list(range(offs[0], offs[0] + len(offs)))


def _group_stores(stores: List[MMStore]) -> List[UnrolledStore]:
    """Group a run of mmSTOREs by array pointer, offsets sorted."""
    by_ptr: dict = {}
    order: List[str] = []
    for s in stores:
        if s.c_ptr not in by_ptr:
            by_ptr[s.c_ptr] = []
            order.append(s.c_ptr)
        by_ptr[s.c_ptr].append(s)
    groups = []
    for ptr in order:
        grp = sorted(by_ptr[ptr], key=lambda s: s.c_off if s.c_off is not None else 0)
        groups.append(UnrolledStore(stores=grp, c_ptr=ptr))
    return groups


# ---------------------------------------------------------------------------
# the identifier pass
# ---------------------------------------------------------------------------


class TemplateIdentifier:
    """Tag template-matching fragments across a whole function."""

    def __init__(self) -> None:
        self.regions: List[C.TaggedRegion] = []

    def identify(self, fn: C.FuncDef) -> C.FuncDef:
        """Mutate ``fn`` in place, replacing matches with TaggedRegions."""
        self._scan_block(fn.body)
        return fn

    # recursive-descent traversal (paper §2.2)
    def _scan_block(self, block: C.Block) -> None:
        for s in block.stmts:
            if isinstance(s, C.For):
                self._scan_block(s.body)
            elif isinstance(s, C.If):
                self._scan_block(s.then)
                if s.els is not None:
                    self._scan_block(s.els)
            elif isinstance(s, C.Block):
                self._scan_block(s)
        block.stmts = self._scan_stmts(block.stmts)

    def _tag(self, name: str, stmts: List[C.Node], payload) -> C.TaggedRegion:
        region = C.TaggedRegion(
            template=name, stmts=stmts, binding={"payload": payload}
        )
        self.regions.append(region)
        return region

    def _scan_stmts(self, stmts: List[C.Node]) -> List[C.Node]:
        out: List[C.Node] = []
        i = 0
        n = len(stmts)
        while i < n:
            # mvCOMP runs (checked first: its prefix looks like mmCOMP's)
            mv = match_mv_comp(stmts, i)
            if mv is not None:
                run = [mv]
                j = i + 5
                while True:
                    nxt = match_mv_comp(stmts, j)
                    if nxt is None or nxt.scal != mv.scal:
                        break
                    run.append(nxt)
                    j += 5
                out.append(self._tag_mv_run(run, stmts[i:j]))
                i = j
                continue

            mm = match_mm_comp(stmts, i)
            if mm is not None:
                run = [mm]
                j = i + 4
                while True:
                    nxt = match_mm_comp(stmts, j)
                    if nxt is None:
                        break
                    run.append(nxt)
                    j += 4
                consumed = self._tag_mm_run(run, stmts, i)
                out.extend(consumed)
                i = j
                continue

            sc = match_mv_scale(stmts, i)
            if sc is not None:
                run = [sc]
                j = i + 3
                while True:
                    nxt = match_mv_scale(stmts, j)
                    if (nxt is None or nxt.scal != sc.scal
                            or nxt.x_ptr != sc.x_ptr):
                        break
                    run.append(nxt)
                    j += 3
                raw = stmts[i:j]
                ordered = sorted(run, key=lambda s: s.x_off or 0)
                name = "mvUnrolledSCALE" if len(run) > 1 else "mvSCALE"
                out.append(self._tag(name, raw, UnrolledMVScale(scales=ordered)))
                i = j
                continue

            st = match_mm_store(stmts, i)
            if st is not None:
                run = [st]
                j = i + 3
                while True:
                    nxt = match_mm_store(stmts, j)
                    if nxt is None:
                        break
                    run.append(nxt)
                    j += 3
                raw = stmts[i:j]
                for group in _group_stores(run):
                    name = "mmUnrolledSTORE" if len(group.stores) > 1 else "mmSTORE"
                    grp_stmts = self._stmts_of_stores(group, raw)
                    out.append(self._tag(name, grp_stmts, group))
                i = j
                continue

            red = match_sum_reduce(stmts[i])
            if red is not None:
                out.append(self._tag("sumREDUCE", [stmts[i]], red))
                i += 1
                continue

            out.append(stmts[i])
            i += 1
        return out

    def _tag_mv_run(self, run: List[MVComp], raw: List[C.Node]) -> C.TaggedRegion:
        if len(run) == 1:
            return self._tag("mvCOMP", raw, UnrolledMVComp(comps=run))
        ordered = sorted(run, key=lambda c: (c.a_ptr, c.a_off or 0))
        return self._tag("mvUnrolledCOMP", raw, UnrolledMVComp(comps=ordered))

    def _tag_mm_run(self, run: List[MMComp], stmts: List[C.Node],
                    start: int) -> List[C.Node]:
        """Split an mmCOMP run into maximal grid/paired regions."""
        out: List[C.Node] = []
        pos = start
        remaining = run
        while remaining:
            grid = _grid_prefix(remaining)
            if grid is not None and len(grid.comps) > 1:
                count = len(grid.comps)
                raw = stmts[pos:pos + 4 * count]
                out.append(self._tag("mmUnrolledCOMP", raw, grid))
            else:
                count = 1
                raw = stmts[pos:pos + 4]
                single = UnrolledComp(
                    comps=[remaining[0]], kind="grid", n1=1, n2=1,
                    a_ptr=remaining[0].a_ptr,
                )
                out.append(self._tag("mmCOMP", raw, single))
            remaining = remaining[count:]
            pos += 4 * count
        return out

    @staticmethod
    def _stmts_of_stores(group: UnrolledStore, raw: List[C.Node]) -> List[C.Node]:
        """Original statements belonging to this store group (3 per store)."""
        grp_stmts: List[C.Node] = []
        for store in group.stores:
            for k in range(0, len(raw), 3):
                window = raw[k:k + 3]
                cand = match_mm_store(window, 0)
                if (
                    cand is not None
                    and cand.c_ptr == store.c_ptr
                    and cand.c_off == store.c_off
                    and cand.res == store.res
                ):
                    grp_stmts.extend(window)
                    break
        return grp_stmts


def identify_templates(fn: C.FuncDef) -> Tuple[C.FuncDef, List[C.TaggedRegion]]:
    """Run the Template Identifier; returns the tagged function and regions."""
    ident = TemplateIdentifier()
    ident.identify(fn)
    return fn, ident.regions
