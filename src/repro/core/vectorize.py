"""SIMD vectorization planning (paper §3.4-§3.6).

Decides, per tagged region, which vectorization strategy applies:

- **Vdup method** (Fig. 8): n mmCOMP repetitions loading n contiguous
  elements of A and a single element of B fold into Vld-Vdup-Vmul-Vadd.
  Requires contiguous A lanes; B lanes may live behind distinct pointers.
- **Shuf method** (Fig. 9): n x n repetitions on contiguous elements of
  both arrays fold into Vld-Vld-Vmul-Vadd plus n-1 Shuf-Vmul-Vadd.
  Requires contiguous lanes on both sides; accumulator lanes end up
  permuted, which the store optimizer must undo (implemented for n=2).
- **paired** (DOT): n repetitions advancing both arrays together fold into
  Vld-Vld-Vmul-Vadd with a vector accumulator.
- **mv** (Figs. 10/11): n repetitions on contiguous elements fold into
  Vld-Vld-Vmul-Vadd-Vst; the scalar multiplier is broadcast.

The planner also decides the accumulator *packing* — which scalar
variables share a vector register, in which lane order — and records
scalars that must be materialized broadcast across all lanes (mv ``scal``,
AXPY ``alpha``).  Packing decisions are later realized by the register
allocator; consistency between the COMP region that produces a pack and
the STORE/REDUCE region that consumes it is checked here, at planning
time, so code generation cannot silently produce wrong data layouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.arch import ArchSpec
from ..poet import cast as C
from .identifier import SumReduce
from .templates import UnrolledComp, UnrolledMVComp, UnrolledStore


@dataclass
class PlannedPack:
    """A future vector register: ordered member scalars + layout."""

    members: Tuple[str, ...]
    cls: str  # register class (array root the members correlate to)
    layout: str = "direct"  # "direct" | "shuf"


@dataclass
class RegionPlan:
    """Strategy chosen for one region."""

    strategy: str  # "vdup" | "shuf" | "paired" | "mv" | "vstore" | "scalar" | "hreduce"
    n: int = 1  # lanes per vector op


@dataclass
class VectorPlan:
    """Whole-function vectorization decisions."""

    arch: ArchSpec
    region_plans: Dict[int, RegionPlan] = field(default_factory=dict)
    pack_of: Dict[str, PlannedPack] = field(default_factory=dict)
    broadcast_vars: set = field(default_factory=set)

    def plan_for(self, region: C.TaggedRegion) -> RegionPlan:
        return self.region_plans.get(id(region), RegionPlan("scalar"))

    def _add_pack(self, pack: PlannedPack) -> None:
        for m in pack.members:
            self.pack_of[m] = pack


def _chunk(seq: Sequence, n: int) -> List[List]:
    return [list(seq[i:i + n]) for i in range(0, len(seq), n)]


def plan_vectorization(
    regions: Sequence[C.TaggedRegion],
    arch: ArchSpec,
    strategy: str = "auto",
) -> VectorPlan:
    """Choose strategies and packs for all regions.

    :param strategy: ``"auto"`` picks Vdup when applicable and falls back to
        scalar; ``"vdup"`` / ``"shuf"`` force a method (raising no error —
        regions where the forced method cannot apply fall back); ``"scalar"``
        disables SIMD entirely (the scalar-ablation mode).
    """
    from .regalloc import array_root

    plan = VectorPlan(arch=arch)
    n = arch.doubles_per_vector
    if strategy == "scalar":
        return plan

    # phase 1: COMP regions (these create accumulator packs)
    for region in regions:
        payload = region.binding.get("payload")
        if region.template == "mmUnrolledCOMP":
            _plan_unrolled_comp(plan, region, payload, n, strategy)
        elif region.template == "mvUnrolledCOMP":
            _plan_mv(plan, region, payload, n)
        elif region.template == "mvUnrolledSCALE":
            _plan_scale(plan, region, payload, n)
        # mmCOMP / mmSTORE / mvCOMP / mvSCALE single instances stay scalar

    # consistency repair: if any COMP region using a packed accumulator fell
    # back to scalar (e.g. one l-copy failed a contiguity check), every
    # region touching that accumulator must go scalar too — lanes cannot be
    # updated individually.
    comp_regions = [r for r in regions
                    if r.template in ("mmUnrolledCOMP", "mmCOMP")]
    changed = True
    while changed:
        changed = False
        bad_vars = set()
        for region in comp_regions:
            rp = plan.region_plans.get(id(region))
            if rp is None or rp.strategy == "scalar":
                payload = region.binding.get("payload")
                for comp in payload.comps:
                    if comp.res in plan.pack_of:
                        bad_vars.update(plan.pack_of[comp.res].members)
        if bad_vars:
            for v in list(bad_vars):
                plan.pack_of.pop(v, None)
            for region in comp_regions:
                rp = plan.region_plans.get(id(region))
                if rp is not None and rp.strategy != "scalar":
                    payload = region.binding.get("payload")
                    if any(c.res in bad_vars for c in payload.comps):
                        del plan.region_plans[id(region)]
                        changed = True

    # phase 2: STORE / REDUCE regions (these consume surviving packs)
    for region in regions:
        payload = region.binding.get("payload")
        if region.template == "mmUnrolledSTORE":
            _plan_store(plan, region, payload, n)
        elif region.template == "sumREDUCE":
            _plan_reduce(plan, region, payload, n)

    # post-pass: accumulators correlate to the array they are stored to
    # (paper §3.1: "res0 is later saved as an element of Array C, so it is
    # allocated with a register assigned to C")
    for region in regions:
        if region.template in ("mmUnrolledSTORE", "mmSTORE"):
            payload = region.binding.get("payload")
            for s in payload.stores:
                pack = plan.pack_of.get(s.res)
                if pack is not None:
                    pack.cls = array_root(s.c_ptr)

    return plan


def _plan_unrolled_comp(plan: VectorPlan, region: C.TaggedRegion,
                        payload: UnrolledComp, n: int, strategy: str) -> None:
    from .regalloc import array_root

    if payload.kind == "paired":
        # DOT shape: need contiguous lanes on both sides, count multiple of n
        if (
            payload.a_contiguous
            and payload.b_contiguous
            and payload.n1 % n == 0
            and payload.n1 >= n
        ):
            plan.region_plans[id(region)] = RegionPlan("paired", n)
            res_cls = "tmp"
            for chunk in _chunk([c.res for c in payload.comps], n):
                plan._add_pack(PlannedPack(tuple(chunk), res_cls))
        return

    # grid
    shuf_ok = (
        payload.n1 == n
        and payload.n2 == n
        and n in (2, 4)
        and payload.a_contiguous
        and payload.b_contiguous
    )
    vdup_ok = payload.a_contiguous and payload.n1 % n == 0 and payload.n1 >= n

    use_shuf = shuf_ok and strategy in ("shuf",)
    use_vdup = vdup_ok and not use_shuf and strategy in ("auto", "vdup", "shuf")
    if use_shuf:
        plan.region_plans[id(region)] = RegionPlan("shuf", n)
        # permuted accumulator packs: pack p holds, in lane m, the
        # accumulator for res(a_m, b_{m XOR p}).  The XOR structure is
        # realized by the in-pair swap (vpermilpd, p=1), the half swap
        # (vperm2f128, p=2), and their composition (p=3); for n=2 only
        # p=0 (diagonal) and p=1 (anti-diagonal) exist.
        grid = _res_grid(payload)
        c_cls = _res_class(payload)
        for p in range(n):
            members = tuple(grid[(m, m ^ p)] for m in range(n))
            plan._add_pack(PlannedPack(members, c_cls, layout="shuf"))
    elif use_vdup:
        plan.region_plans[id(region)] = RegionPlan("vdup", n)
        c_cls = _res_class(payload)
        # one pack per B lane per n-chunk of A offsets, A-offset order
        comps_by_b: Dict = {}
        order: List = []
        for comp in payload.comps:
            key = (comp.b_ptr, comp.b_off)
            if key not in comps_by_b:
                comps_by_b[key] = []
                order.append(key)
            comps_by_b[key].append(comp)
        for key in order:
            col = sorted(comps_by_b[key], key=lambda c: c.a_off or 0)
            for chunk in _chunk([c.res for c in col], n):
                plan._add_pack(PlannedPack(tuple(chunk), c_cls))
    # else: stays scalar


def _res_grid(payload: UnrolledComp) -> Dict[Tuple[int, int], str]:
    """(a_rank, b_rank) -> res variable, ranks by sorted lane order."""
    a_lanes = sorted({(c.a_ptr, c.a_off) for c in payload.comps},
                     key=lambda t: (t[0], t[1] or 0))
    b_lanes = sorted({(c.b_ptr, c.b_off) for c in payload.comps},
                     key=lambda t: (t[0], t[1] or 0))
    a_rank = {lane: i for i, lane in enumerate(a_lanes)}
    b_rank = {lane: i for i, lane in enumerate(b_lanes)}
    return {
        (a_rank[(c.a_ptr, c.a_off)], b_rank[(c.b_ptr, c.b_off)]): c.res
        for c in payload.comps
    }


def _res_class(payload: UnrolledComp) -> str:
    """Register class for accumulators: the array they are stored to is not
    visible here, so use the temp class unless the caller refines it."""
    return "tmp"


def _plan_mv(plan: VectorPlan, region: C.TaggedRegion,
             payload: UnrolledMVComp, n: int) -> None:
    offs_a = [c.a_off for c in payload.comps]
    offs_b = [c.b_off for c in payload.comps]
    count = len(payload.comps)
    same_ptrs = (
        len({c.a_ptr for c in payload.comps}) == 1
        and len({c.b_ptr for c in payload.comps}) == 1
    )
    contiguous = (
        None not in offs_a
        and None not in offs_b
        and sorted(offs_a) == list(range(min(offs_a), min(offs_a) + count))
        and sorted(offs_b) == list(range(min(offs_b), min(offs_b) + count))
    )
    if same_ptrs and contiguous and count % n == 0 and count >= n:
        plan.region_plans[id(region)] = RegionPlan("mv", n)
        plan.broadcast_vars.add(payload.scal)


def _plan_scale(plan: VectorPlan, region: C.TaggedRegion,
                payload, n: int) -> None:
    """mvUnrolledSCALE (extension template): Vld-Vmul-Vst over n lanes."""
    offs = [s.x_off for s in payload.scales]
    count = len(payload.scales)
    contiguous = (
        None not in offs
        and sorted(offs) == list(range(min(offs), min(offs) + count))
    )
    if contiguous and count % n == 0 and count >= n:
        plan.region_plans[id(region)] = RegionPlan("scale", n)
        plan.broadcast_vars.add(payload.scal)


def _plan_store(plan: VectorPlan, region: C.TaggedRegion,
                payload: UnrolledStore, n: int) -> None:
    stores = payload.stores
    offs = [s.c_off for s in stores]
    if None in offs or len(stores) % n != 0 or len(stores) < n:
        return
    if sorted(offs) != list(range(min(offs), min(offs) + len(stores))):
        return
    # every n-chunk of res vars (in offset order) must be a planned pack in
    # matching lane order, or a shuf-layout pair this store can un-permute
    for chunk in _chunk([s.res for s in stores], n):
        pack = plan.pack_of.get(chunk[0])
        if pack is None:
            return
        if pack.layout == "direct":
            if list(pack.members) != chunk:
                return
        elif pack.layout == "shuf":
            # shuf layout: members of the chunk are spread across packs;
            # verified by the store optimizer at emission
            if not all(plan.pack_of.get(v) is not None
                       and plan.pack_of[v].layout == "shuf" for v in chunk):
                return
        else:
            return
    plan.region_plans[id(region)] = RegionPlan("vstore", n)


def _plan_reduce(plan: VectorPlan, region: C.TaggedRegion,
                 payload: SumReduce, n: int) -> None:
    # group parts into complete packs
    remaining = list(payload.parts)
    while remaining:
        pack = plan.pack_of.get(remaining[0])
        if pack is None or not all(m in remaining for m in pack.members):
            return  # fall back to scalar reduce
        for m in pack.members:
            remaining.remove(m)
    plan.region_plans[id(region)] = RegionPlan("hreduce", n)
