"""Instruction scheduling (paper §1: "Instruction Selection/Scheduling").

A classic critical-path list scheduler applied to the straight-line
instruction sequences the template optimizers emit.  Dependences:

- true/anti/output register dependences from each instruction's
  reads/writes;
- conservative memory dependences: loads never cross stores, stores stay
  in order (the template regions never need finer disambiguation);
- flag producers/consumers stay ordered (the regions contain none, but the
  invariant keeps the pass safe to apply anywhere).

Priority is the longest latency path to the end of the block, so loads —
which feed multiply/FMA chains — float upward, hiding their latency, which
is exactly the hand-scheduling habit in tuned assembly kernels.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..isa.instructions import Instr, Item


def _build_deps(instrs: Sequence[Instr]) -> List[Set[int]]:
    """deps[i] = set of indices that must execute before instruction i."""
    n = len(instrs)
    deps: List[Set[int]] = [set() for _ in range(n)]
    last_write: Dict[str, int] = {}
    readers_since_write: Dict[str, List[int]] = {}
    last_store = -1
    last_flags_write = -1
    flags_readers: List[int] = []
    mem_readers_since_store: List[int] = []

    for i, ins in enumerate(instrs):
        reads = {r.name if r.kind == "gp" else f"v{r.index}" for r in ins.reg_reads()}
        writes = {r.name if r.kind == "gp" else f"v{r.index}" for r in ins.reg_writes()}

        for r in reads:  # true dependence
            if r in last_write:
                deps[i].add(last_write[r])
        for w in writes:  # output + anti dependences
            if w in last_write:
                deps[i].add(last_write[w])
            for rd in readers_since_write.get(w, ()):
                if rd != i:
                    deps[i].add(rd)

        if ins.loads_mem():
            if last_store >= 0:
                deps[i].add(last_store)
            mem_readers_since_store.append(i)
        if ins.stores_mem():
            if last_store >= 0:
                deps[i].add(last_store)
            deps[i].update(mem_readers_since_store)
            last_store = i
            mem_readers_since_store = []

        if ins.info.reads_flags and last_flags_write >= 0:
            deps[i].add(last_flags_write)
            flags_readers.append(i)
        if ins.info.writes_flags:
            if last_flags_write >= 0:
                deps[i].add(last_flags_write)
            deps[i].update(flags_readers)
            last_flags_write = i
            flags_readers = []

        for r in reads:
            readers_since_write.setdefault(r, []).append(i)
        for w in writes:
            last_write[w] = i
            readers_since_write[w] = []

    return deps


def schedule_block(instrs: Sequence[Instr]) -> List[Instr]:
    """Reorder a straight-line block by critical-path list scheduling."""
    n = len(instrs)
    if n <= 2:
        return list(instrs)
    if any(ins.info.is_branch for ins in instrs):
        return list(instrs)  # not straight-line; leave untouched

    deps = _build_deps(instrs)
    succs: List[List[int]] = [[] for _ in range(n)]
    for i, ds in enumerate(deps):
        for d in ds:
            succs[d].append(i)

    # longest path to end, weighted by latency
    priority = [0] * n
    for i in range(n - 1, -1, -1):
        lat = instrs[i].info.latency
        priority[i] = lat + max((priority[s] for s in succs[i]), default=0)

    indeg = [len(ds) for ds in deps]
    ready = [i for i in range(n) if indeg[i] == 0]
    out: List[Instr] = []
    while ready:
        # highest priority first; original order breaks ties (stability)
        ready.sort(key=lambda i: (-priority[i], i))
        i = ready.pop(0)
        out.append(instrs[i])
        for s in succs[i]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    assert len(out) == n, "scheduler dropped instructions"
    return out


def schedule_items(items: Sequence[Item]) -> List[Item]:
    """Schedule each maximal run of instructions between labels/directives."""
    out: List[Item] = []
    run: List[Instr] = []
    for it in items:
        if isinstance(it, Instr) and not it.info.is_branch:
            run.append(it)
        else:
            out.extend(schedule_block(run))
            run = []
            out.append(it)
    out.extend(schedule_block(run))
    return out
