"""Vector register allocation (paper §3.1).

The allocation strategy follows the paper:

- scalar variables are classified by the array they correlate to (loads
  from A use A's registers, accumulators destined for C use C's);
- a **separate register queue is dedicated to each array variable** so
  values from different arrays never share registers, minimizing false
  dependences before vectorization;
- with R physical registers and m arrays, each array gets R/m registers
  (we give the residue to a shared temporary queue, which also backs the
  "pure temporary" class of tmp2-style variables);
- assignments are remembered in a global ``reg_table`` so decisions stay
  consistent across template regions and the surrounding code (Fig. 2);
- a register is released — and its entry dropped from ``reg_table`` —
  only when its variable's live range ends.

Vectorized scalars live in *lanes* of a shared register; :class:`Pack`
records the member order so the store/reduce optimizers can match layout.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..isa.arch import ArchSpec
from ..isa.registers import Register, xmm


class OutOfRegistersError(RuntimeError):
    """All vector register queues are exhausted."""


@dataclass
class Pack:
    """A vector register holding several scalar variables, one per lane.

    ``layout`` is ``"direct"`` when lane k holds members[k]'s true value, or
    ``"shuf"`` when the Shuf vectorization method left lanes permuted (the
    store optimizer must un-permute).
    """

    reg: Register
    members: List[str]
    layout: str = "direct"
    zeroed: bool = False

    def lane_of(self, var: str) -> int:
        return self.members.index(var)


@dataclass
class Loc:
    """Where a scalar variable lives: a whole register or a pack lane."""

    reg: Register
    lane: Optional[int] = None
    pack: Optional[Pack] = None

    @property
    def is_lane(self) -> bool:
        return self.pack is not None


_PTR_RE = re.compile(r"^ptr_([A-Za-z_][A-Za-z0-9_]*?)\d*$")


def array_root(name: str) -> str:
    """Root array of a derived pointer name (``ptr_A0`` -> ``A``)."""
    m = _PTR_RE.match(name)
    return m.group(1) if m else name


TEMP_CLASS = "tmp"


class VectorAllocator:
    """Per-array register queues with a global reg_table.

    ``unified=True`` is the ablation mode: a single shared queue replaces
    the per-array queues, so values from different arrays may reuse the
    same registers — the false-dependence-prone strategy the paper's
    per-array design avoids (§3.1).
    """

    def __init__(self, arch: ArchSpec, array_classes: Sequence[str],
                 unified: bool = False) -> None:
        self.arch = arch
        self.unified = unified
        classes = list(dict.fromkeys(array_classes))  # unique, ordered
        total = arch.n_vector_regs
        if unified:
            self.classes = [TEMP_CLASS]
            self.queues: Dict[str, List[Register]] = {
                TEMP_CLASS: [xmm(k) for k in range(total)]
            }
        else:
            self.classes = classes + [TEMP_CLASS]
            per = total // len(self.classes)
            if per == 0:
                raise OutOfRegistersError(
                    f"{len(self.classes)} register classes but only "
                    f"{total} registers"
                )
            self.queues = {}
            idx = 0
            for cls in self.classes:
                take = per
                self.queues[cls] = [xmm(idx + k) for k in range(take)]
                idx += take
            # residue goes to the temp queue
            while idx < total:
                self.queues[TEMP_CLASS].append(xmm(idx))
                idx += 1
        #: the paper's global variable->register map (Fig. 2: ``reg_table``)
        self.reg_table: Dict[str, Loc] = {}
        self._reg_owner: Dict[int, str] = {}  # reg index -> class it came from

    # -- raw register management ---------------------------------------------
    def _pop(self, cls: str) -> Register:
        cls = cls if cls in self.queues else TEMP_CLASS
        order = [cls, TEMP_CLASS] + [c for c in self.classes
                                     if c not in (cls, TEMP_CLASS)]
        for candidate in order:
            queue = self.queues[candidate]
            if queue:
                reg = queue.pop(0)
                self._reg_owner[reg.index] = candidate
                return reg
        raise OutOfRegistersError(
            f"no vector registers left (requested class {cls!r})"
        )

    def free_reg(self, reg: Register) -> None:
        owner = self._reg_owner.pop(reg.index, TEMP_CLASS)
        self.queues[owner].append(reg.xmm)

    def alloc_temp_reg(self, cls: str = TEMP_CLASS) -> Register:
        """Allocate an anonymous register (caller must ``free_reg`` it)."""
        return self._pop(cls)

    # -- variable-level interface -----------------------------------------
    def loc(self, var: str) -> Optional[Loc]:
        return self.reg_table.get(var)

    def alloc(self, var: str, cls: str = TEMP_CLASS) -> Loc:
        """Allocate (or return the existing) whole register for ``var``."""
        existing = self.reg_table.get(var)
        if existing is not None:
            return existing
        reg = self._pop(cls)
        loc = Loc(reg)
        self.reg_table[var] = loc
        return loc

    def alloc_pack(self, members: Sequence[str], cls: str,
                   layout: str = "direct") -> Pack:
        """Allocate one register shared by ``members`` (lane k = member k)."""
        for m in members:
            if m in self.reg_table:
                raise OutOfRegistersError(
                    f"variable {m!r} already has a register; cannot re-pack"
                )
        reg = self._pop(cls)
        pack = Pack(reg=reg, members=list(members), layout=layout)
        for lane, m in enumerate(members):
            self.reg_table[m] = Loc(reg, lane=lane, pack=pack)
        return pack

    def release_var(self, var: str) -> None:
        """Release ``var``; frees the register once no pack member needs it."""
        loc = self.reg_table.pop(var, None)
        if loc is None:
            return
        if loc.pack is not None:
            if any(m in self.reg_table for m in loc.pack.members):
                return  # other lanes still live
        self.free_reg(loc.reg)

    def release_dead(self, liveness, pos: int) -> None:
        """Release every tracked variable dead after flattened position ``pos``."""
        for var in [v for v in self.reg_table if liveness.dead_after(v, pos)]:
            self.release_var(var)

    # -- introspection -------------------------------------------------------
    def in_use(self) -> int:
        return len(self._reg_owner)

    def dump(self) -> str:
        rows = [f"{v}: {loc.reg.name}"
                + (f"[lane {loc.lane}]" if loc.is_lane else "")
                for v, loc in sorted(self.reg_table.items())]
        return "\n".join(rows)
