"""Loop unroll&jam (paper §2.1).

Unroll&jam unrolls an *outer* loop and fuses ("jams") the resulting copies
of its inner loops, so that the replicated computation lands inside a single
inner loop body — the shape that produces the mmUnrolledCOMP instruction
sequences of paper Fig. 13.

The jam step here is structural: the unrolled copies of the outer-loop body
are statement lists with identical shape; statements are merged position by
position, and for-loops with identical headers are fused recursively.  This
is legal for the DLA kernels AUGEM targets because distinct outer iterations
write disjoint data (different columns of C / different accumulators).
"""

from __future__ import annotations

from typing import List

from ..poet import cast as C
from ..poet.errors import TransformError
from ..poet.pattern import ast_equal
from .base import FreshNames, Transform, loop_info, require_loop
from .unroll import unrolled_copies


def _is_for(s: C.Node) -> bool:
    return isinstance(s, C.For)


def _same_header(a: C.For, b: C.For) -> bool:
    return (
        ast_equal(a.init, b.init)
        and ast_equal(a.cond, b.cond)
        and ast_equal(a.step, b.step)
    )


def jam(copies: List[List[C.Node]]) -> List[C.Node]:
    """Merge aligned statement lists, fusing identically-headed loops.

    All lists must have the same length and aligned statement kinds; loops
    are fused recursively, other statements are emitted copy-by-copy at
    their position (declarations first so fused loop bodies may reference
    every copy's temporaries).
    """
    if not copies:
        return []
    length = len(copies[0])
    if any(len(c) != length for c in copies):
        raise TransformError("unroll&jam: copies have diverging shapes")

    out: List[C.Node] = []
    for pos in range(length):
        slot = [c[pos] for c in copies]
        if all(_is_for(s) for s in slot):
            first = slot[0]
            if all(_same_header(first, s) for s in slot[1:]):
                fused_body = jam([s.body.stmts for s in slot])
                out.append(C.For(first.init, first.cond, first.step, C.Block(fused_body)))
                continue
            raise TransformError(
                "unroll&jam: inner loops have different headers; cannot fuse"
            )
        out.extend(slot)
    return out


class UnrollJam(Transform):
    """Unroll the loop over ``var`` by ``factor`` and jam the copies."""

    name = "unroll_jam"

    def __init__(self, var: str, factor: int) -> None:
        if factor < 1:
            raise TransformError("unroll&jam factor must be >= 1")
        self.var = var
        self.factor = factor

    def apply(self, fn: C.FuncDef) -> C.FuncDef:
        if self.factor == 1:
            return fn
        info = require_loop(fn.body, self.var)
        loop = info.loop
        copies = unrolled_copies(info, self.factor, FreshNames())
        loop.body = C.Block(jam(copies))
        loop.step = C.Assign(C.Id(info.var), "+=", C.IntLit(self.factor * info.step))
        return fn
