"""The Optimized C Kernel Generator (paper §2.1).

Composes the five source-to-source transformations in the order used by the
paper — unroll&jam, unrolling, (accumulator splitting,) strength reduction,
scalar replacement, prefetching — under a single parameterized
configuration.  The configuration is the empirical-tuning search space
(:mod:`repro.tuning` sweeps it).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from ..obs import span
from ..poet import cast as C
from ..poet.parser import parse_function
from .base import Transform
from .prefetch import InsertPrefetch
from .scalar_replacement import HoistDecls, ScalarReplace
from .strength_reduction import StrengthReduce
from .unroll import SplitAccumulator, Unroll
from .unroll_jam import UnrollJam


@dataclass(frozen=True)
class OptimizationConfig:
    """Parameters of the Optimized C Kernel Generator.

    :param unroll_jam: ordered ``(loop_var, factor)`` pairs — each outer loop
        is unrolled by its factor and jammed (applied outermost first).
    :param unroll: ordered ``(loop_var, factor)`` pairs of plain unrolling.
    :param split: ``(loop_var, accumulator, ways)`` accumulator splits,
        applied after unrolling.
    :param prefetch_distance: elements ahead (int, or dict per array/pointer,
        or None to disable prefetching).
    :param prefetch_level: 0 / 1 / 2 / "nta".
    :param assume_divisible: skip remainder loops (the blocking drivers
        guarantee divisibility of the trip counts they pass in).
    """

    unroll_jam: Tuple[Tuple[str, int], ...] = ()
    unroll: Tuple[Tuple[str, int], ...] = ()
    split: Tuple[Tuple[str, str, int], ...] = ()
    prefetch_distance: Optional[Union[int, Dict[str, int]]] = None
    prefetch_level: Union[int, str] = 0
    assume_divisible: bool = True

    def with_(self, **kw) -> "OptimizationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)

    def describe(self) -> str:
        parts = []
        for v, f in self.unroll_jam:
            parts.append(f"uj({v})={f}")
        for v, f in self.unroll:
            parts.append(f"u({v})={f}")
        for v, a, w in self.split:
            parts.append(f"split({a})={w}")
        if self.prefetch_distance is not None:
            parts.append(f"pf={self.prefetch_distance}")
        return ", ".join(parts) if parts else "baseline"


def build_pipeline(config: OptimizationConfig) -> List[Transform]:
    """Transforms in application order for ``config``."""
    pipeline: List[Transform] = []
    for var, factor in config.unroll_jam:
        pipeline.append(UnrollJam(var, factor))
    for var, factor in config.unroll:
        pipeline.append(
            Unroll(var, factor, assume_divisible=config.assume_divisible)
        )
    for var, acc, ways in config.split:
        pipeline.append(SplitAccumulator(var, acc, ways))
    pipeline.append(StrengthReduce())
    pipeline.append(ScalarReplace())
    pipeline.append(HoistDecls())
    if config.prefetch_distance is not None:
        pipeline.append(
            InsertPrefetch(distance=config.prefetch_distance,
                           level=config.prefetch_level)
        )
    return pipeline


def optimize_c_kernel(kernel: Union[str, C.FuncDef],
                      config: OptimizationConfig) -> C.FuncDef:
    """Run the Optimized C Kernel Generator on a simple-C kernel.

    ``kernel`` may be C source text or an already-parsed function.  A fresh
    tree is produced; the input is never mutated.
    """
    with span("transforms.optimize_c", config=config.describe()):
        fn = (parse_function(kernel) if isinstance(kernel, str)
              else kernel.clone())
        for transform in build_pipeline(config):
            with span(f"transform.{type(transform).__name__}"):
                fn = transform.apply(fn)
    return fn
