"""Scalar replacement (paper §2.1, §4.1.1).

Replaces array references with scalar temporaries and lowers compound
assignments into the single-operation statement sequences the optimization
templates are written against (paper Fig. 3):

``res += A[i]*B[j]``   ->  ``tmp0 = A[i]; tmp1 = B[j]; tmp2 = tmp0*tmp1;
res = res + tmp2;``                                   (mmCOMP shape)

``B[j] += A[i]*scal``  ->  ``tmp0 = A[i]; tmp1 = B[j]; tmp0 = tmp0*scal;
tmp1 = tmp1 + tmp0; B[j] = tmp1;``                    (mvCOMP shape)

``C[i] += res``        ->  ``tmp0 = C[i]; res = res + tmp0; C[i] = res;``
                                                      (mmSTORE shape)

Also provides :class:`HoistDecls`, which moves every declaration to the top
of the function (leaving an assignment at the original site) so the
low-level C consists of a flat symbol set plus uniform statements — the
form the Template Identifier and the Assembly Kernel Generator consume.
"""

from __future__ import annotations

from typing import List, Optional

from ..poet import cast as C
from ..poet.errors import TransformError
from ..poet.symtab import SymbolTable
from .base import FreshNames, Transform


def _is_float_scalar(e: C.Node, symtab: SymbolTable) -> bool:
    return isinstance(e, C.Id) and symtab.is_float_scalar(e.name)


class ScalarReplace(Transform):
    """Lower compound float assignments to template-shaped 3-address code."""

    name = "scalar_replacement"

    def __init__(self) -> None:
        self._names = FreshNames()

    def apply(self, fn: C.FuncDef) -> C.FuncDef:
        symtab = SymbolTable.of_function(fn)
        self._new_decls: List[C.Decl] = []
        self._lower_block(fn.body, symtab)
        fn.body.stmts[0:0] = self._new_decls
        return fn

    # -- helpers ---------------------------------------------------------
    def _tmp(self, symtab: SymbolTable, ctype: C.CType) -> str:
        name = self._names.fresh("tmp")
        while name in symtab:
            name = self._names.fresh("tmp")
        symtab.declare(name, ctype)
        self._new_decls.append(C.Decl(name, ctype))
        return name

    def _lower_block(self, block: C.Block, symtab: SymbolTable) -> None:
        out: List[C.Node] = []
        for s in block.stmts:
            if isinstance(s, C.For):
                self._lower_block(s.body, symtab)
                out.append(s)
            elif isinstance(s, C.If):
                self._lower_block(s.then, symtab)
                if s.els is not None:
                    self._lower_block(s.els, symtab)
                out.append(s)
            elif isinstance(s, C.Block):
                self._lower_block(s, symtab)
                out.append(s)
            elif isinstance(s, C.Assign):
                out.extend(self._lower_assign(s, symtab))
            else:
                out.append(s)
        block.stmts = out

    def _elem_type(self, ref: C.Index, symtab: SymbolTable) -> C.CType:
        return symtab.expr_type(ref)

    def _lower_assign(self, s: C.Assign, symtab: SymbolTable) -> List[C.Node]:
        # Only float-typed compound updates are lowered; integer/pointer
        # arithmetic stays for the Assembly Kernel Generator.
        try:
            lhs_type = symtab.expr_type(s.lhs)
        except Exception:
            return [s]
        if not lhs_type.is_float:
            return [s]

        # Shape 0 (mvSCALE, extension template): arr[idx] = arr[idx] * scal
        if (
            s.op in ("=", "*=")
            and isinstance(s.lhs, C.Index)
        ):
            if s.op == "*=":
                mul = C.BinOp("*", s.lhs.clone(), s.rhs)
            else:
                mul = s.rhs
            if isinstance(mul, C.BinOp) and mul.op == "*":
                from ..poet.pattern import ast_equal

                a, b = mul.left, mul.right
                if ast_equal(b, s.lhs) and not ast_equal(a, s.lhs):
                    a, b = b, a  # canonical: arr[idx] * scal
                if ast_equal(a, s.lhs) and _is_float_scalar(b, symtab):
                    t = self._tmp(symtab, self._elem_type(s.lhs, symtab))
                    return [
                        C.Assign(C.Id(t), "=", s.lhs.clone()),
                        C.Assign(C.Id(t), "=",
                                 C.BinOp("*", C.Id(t), b.clone())),
                        C.Assign(s.lhs.clone(), "=", C.Id(t)),
                    ]

        if s.op not in ("+=", "-="):
            return [s]
        rhs = s.rhs

        # Shape 1: X += a * b
        if isinstance(rhs, C.BinOp) and rhs.op == "*" and s.op == "+=":
            a, b = rhs.left, rhs.right
            if isinstance(s.lhs, C.Id):
                return self._lower_mm_comp(s.lhs, a, b, symtab)
            if isinstance(s.lhs, C.Index):
                return self._lower_mv_comp(s.lhs, a, b, symtab)

        # Shape 2: arr[idx] += scalar  (mmSTORE)
        if isinstance(s.lhs, C.Index) and _is_float_scalar(rhs, symtab) and s.op == "+=":
            t = self._elem_type(s.lhs, symtab)
            tmp = self._tmp(symtab, t)
            return [
                C.Assign(C.Id(tmp), "=", s.lhs.clone()),
                C.Assign(rhs.clone(), "=", C.BinOp("+", rhs.clone(), C.Id(tmp))),
                C.Assign(s.lhs.clone(), "=", rhs.clone()),
            ]

        # Shape 3: scalar += arr[idx] (plain accumulate)
        if isinstance(s.lhs, C.Id) and isinstance(rhs, C.Index):
            t = self._elem_type(rhs, symtab)
            tmp = self._tmp(symtab, t)
            return [
                C.Assign(C.Id(tmp), "=", rhs.clone()),
                C.Assign(
                    s.lhs.clone(),
                    "=",
                    C.BinOp("+" if s.op == "+=" else "-", s.lhs.clone(), C.Id(tmp)),
                ),
            ]
        return [s]

    def _lower_mm_comp(self, dst: C.Id, a: C.Node, b: C.Node,
                       symtab: SymbolTable) -> List[C.Node]:
        """res += a*b with scalar res -> mmCOMP instruction sequence."""
        stmts: List[C.Node] = []
        ta = self._load_operand(a, stmts, symtab)
        tb = self._load_operand(b, stmts, symtab)
        tprod = self._tmp(symtab, symtab.expr_type(dst))
        stmts.append(C.Assign(C.Id(tprod), "=", C.BinOp("*", ta, tb)))
        stmts.append(C.Assign(dst.clone(), "=", C.BinOp("+", dst.clone(), C.Id(tprod))))
        return stmts

    def _lower_mv_comp(self, dst: C.Index, a: C.Node, b: C.Node,
                       symtab: SymbolTable) -> List[C.Node]:
        """B[idx] += a*b (one operand a memory ref, the other a scalar)."""
        # put the memory operand first, the scalar second (mvCOMP's `scal`)
        if isinstance(a, C.Index):
            mem, scal = a, b
        elif isinstance(b, C.Index):
            mem, scal = b, a
        else:
            # both scalars: still lower via mv shape with a preliminary mul
            mem, scal = a, b
        stmts: List[C.Node] = []
        t_mem = self._load_operand(mem, stmts, symtab)  # tmp0 = A[idx1]
        elem_t = symtab.expr_type(dst)
        t_dst = self._tmp(symtab, elem_t)  # tmp1 = B[idx2]
        stmts.append(C.Assign(C.Id(t_dst), "=", dst.clone()))
        scal_e = scal.clone() if isinstance(scal, C.Id) else self._load_operand(scal, stmts, symtab)
        # tmp0 = tmp0 * scal
        stmts.append(C.Assign(t_mem.clone(), "=", C.BinOp("*", t_mem.clone(), scal_e)))
        # tmp1 = tmp1 + tmp0
        stmts.append(C.Assign(C.Id(t_dst), "=", C.BinOp("+", C.Id(t_dst), t_mem.clone())))
        # B[idx2] = tmp1
        stmts.append(C.Assign(dst.clone(), "=", C.Id(t_dst)))
        return stmts

    def _load_operand(self, e: C.Node, stmts: List[C.Node],
                      symtab: SymbolTable) -> C.Node:
        """Materialize a load for memory operands; pass scalars through."""
        if isinstance(e, C.Index):
            t = self._tmp(symtab, self._elem_type(e, symtab))
            stmts.append(C.Assign(C.Id(t), "=", e.clone()))
            return C.Id(t)
        if isinstance(e, (C.Id, C.FloatLit, C.IntLit)):
            return e.clone()
        raise TransformError(
            f"operand too complex for scalar replacement: {e}"
        )


class HoistDecls(Transform):
    """Move all declarations to the top of the function body.

    Initializers stay behind as plain assignments at the original position,
    preserving semantics (names are unique after the unroll renames).
    """

    name = "hoist_decls"

    def apply(self, fn: C.FuncDef) -> C.FuncDef:
        hoisted: List[C.Decl] = []

        def process(block: C.Block, top: bool) -> None:
            out: List[C.Node] = []
            for s in block.stmts:
                if isinstance(s, C.For):
                    if isinstance(s.init, C.Decl):
                        d = s.init
                        hoisted.append(C.Decl(d.name, d.ctype))
                        s.init = (
                            C.Assign(C.Id(d.name), "=", d.init)
                            if d.init is not None
                            else None
                        )
                    process(s.body, False)
                    out.append(s)
                elif isinstance(s, C.If):
                    process(s.then, False)
                    if s.els is not None:
                        process(s.els, False)
                    out.append(s)
                elif isinstance(s, C.Block):
                    process(s, False)
                    out.append(s)
                elif isinstance(s, C.Decl):
                    hoisted.append(C.Decl(s.name, s.ctype))
                    if s.init is not None:
                        out.append(C.Assign(C.Id(s.name), "=", s.init))
                else:
                    out.append(s)
            block.stmts = out

        process(fn.body, True)
        fn.body.stmts[0:0] = hoisted
        return fn
