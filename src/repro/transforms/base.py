"""Shared infrastructure for the source-to-source transformations.

The five transformations of the paper's *Optimized C Kernel Generator*
(§2.1) all operate on canonical counted loops.  This module provides loop
normalization/introspection helpers and the :class:`Transform` base class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..poet import cast as C
from ..poet.errors import TransformError


@dataclass
class LoopInfo:
    """A canonical counted loop ``for (v = L; v < U; v += S)``."""

    loop: C.For
    var: str
    lower: C.Node  # expression L
    upper: C.Node  # expression U
    step: int  # constant S > 0

    @property
    def body(self) -> C.Block:
        return self.loop.body


def loop_info(loop: C.For) -> LoopInfo:
    """Extract canonical-form info or raise :class:`TransformError`.

    Accepted shapes: init ``v = L`` (assignment) or ``long v = L`` (decl) or
    absent (``v`` initialized before the loop is *not* canonical; the
    transforms require an explicit lower bound); cond ``v < U`` or
    ``v <= U-1``; step ``v += S`` with integer-literal S.
    """
    init = loop.init
    if isinstance(init, C.Assign) and init.op == "=" and isinstance(init.lhs, C.Id):
        var = init.lhs.name
        lower = init.rhs
    elif isinstance(init, C.Decl) and init.init is not None:
        var = init.name
        lower = init.init
    else:
        raise TransformError("loop init is not canonical (need v = L)")

    cond = loop.cond
    if (
        isinstance(cond, C.BinOp)
        and cond.op in ("<", "<=")
        and isinstance(cond.left, C.Id)
        and cond.left.name == var
    ):
        upper = cond.right if cond.op == "<" else C.add(cond.right, C.IntLit(1))
    else:
        raise TransformError(f"loop condition is not canonical (need {var} < U)")

    step_stmt = loop.step
    if (
        isinstance(step_stmt, C.Assign)
        and step_stmt.op == "+="
        and isinstance(step_stmt.lhs, C.Id)
        and step_stmt.lhs.name == var
        and isinstance(step_stmt.rhs, C.IntLit)
        and step_stmt.rhs.value > 0
    ):
        step = step_stmt.rhs.value
    else:
        raise TransformError(f"loop step is not canonical (need {var} += S)")

    return LoopInfo(loop, var, lower, upper, step)


def find_loop(root: C.Node, var: str) -> Optional[C.For]:
    """Find the (first, outermost) for-loop whose induction variable is ``var``."""
    for n in root.walk():
        if isinstance(n, C.For):
            try:
                info = loop_info(n)
            except TransformError:
                continue
            if info.var == var:
                return n
    return None


def require_loop(root: C.Node, var: str) -> LoopInfo:
    loop = find_loop(root, var)
    if loop is None:
        raise TransformError(f"no canonical loop over {var!r} found")
    return loop_info(loop)


def declared_names(stmts) -> list:
    """Names declared by top-level or nested Decl statements in ``stmts``."""
    names = []
    for s in stmts:
        for n in s.walk():
            if isinstance(n, C.Decl):
                names.append(n.name)
    return names


class Transform:
    """Base class: a named, parameterized source-to-source transformation."""

    name = "transform"

    def apply(self, fn: C.FuncDef) -> C.FuncDef:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, fn: C.FuncDef) -> C.FuncDef:
        return self.apply(fn)

    def __repr__(self) -> str:
        args = ", ".join(
            f"{k}={v!r}" for k, v in vars(self).items() if not k.startswith("_")
        )
        return f"{type(self).__name__}({args})"


class FreshNames:
    """Generator of unique variable names with a shared counter per prefix."""

    def __init__(self) -> None:
        self._counters: dict = {}

    def fresh(self, prefix: str) -> str:
        i = self._counters.get(prefix, 0)
        self._counters[prefix] = i + 1
        return f"{prefix}{i}"
