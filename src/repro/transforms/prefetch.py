"""Data prefetching (paper §2.1).

Inserts software prefetch intrinsics (``prefetch_t0`` / ``prefetch_t1`` /
``prefetch_nta`` calls, mapped by the Assembly Kernel Generator to the x86
``prefetcht0``/``prefetcht1``/``prefetchnta`` instructions) at the top of a
loop body, one per derived pointer that the loop advances — mirroring the
prefetch statements of paper Fig. 13 (lines 7-8, 12).

The prefetch *distance* is in elements ahead of the current pointer and is a
tuning parameter (paper §2.1: configurations are selected empirically).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..poet import cast as C
from ..poet.symtab import SymbolTable
from .base import Transform, loop_info
from ..poet.errors import TransformError

PREFETCH_FUNCS = ("prefetch_t0", "prefetch_t1", "prefetch_t2", "prefetch_nta")

_LEVEL_TO_FUNC = {0: "prefetch_t0", 1: "prefetch_t1", 2: "prefetch_t2",
                  "nta": "prefetch_nta"}


def _advanced_pointers(loop: C.For, symtab: SymbolTable) -> list:
    """Pointer names incremented directly in this loop body."""
    names = []
    for s in loop.body.stmts:
        if (
            isinstance(s, C.Assign)
            and s.op == "+="
            and isinstance(s.lhs, C.Id)
            and symtab.is_pointer(s.lhs.name)
        ):
            names.append(s.lhs.name)
    return names


class InsertPrefetch(Transform):
    """Insert prefetch calls for advanced pointers in the selected loops.

    :param loops: loop variables to instrument (None = every canonical loop
        that advances at least one pointer).
    :param distance: elements ahead; may be a single int or a dict keyed by
        original array prefix (``"A"`` matches pointer ``ptr_A0``) or exact
        pointer name.
    :param level: cache level: 0, 1, 2 or "nta".
    """

    name = "prefetch"

    def __init__(self, loops: Optional[Iterable[str]] = None,
                 distance=64, level=0) -> None:
        if level not in _LEVEL_TO_FUNC:
            raise TransformError(f"bad prefetch level {level!r}")
        self.loops = None if loops is None else set(loops)
        self.distance = distance
        self.func = _LEVEL_TO_FUNC[level]

    def _distance_for(self, ptr: str) -> Optional[int]:
        if isinstance(self.distance, int):
            return self.distance
        assert isinstance(self.distance, dict)
        if ptr in self.distance:
            return self.distance[ptr]
        # ptr names look like ptr_<array><n>
        for key, d in self.distance.items():
            if ptr.startswith(f"ptr_{key}"):
                return d
        return None

    def apply(self, fn: C.FuncDef) -> C.FuncDef:
        symtab = SymbolTable.of_function(fn)
        for node in fn.body.walk():
            if not isinstance(node, C.For):
                continue
            try:
                info = loop_info(node)
            except TransformError:
                continue
            if self.loops is not None and info.var not in self.loops:
                continue
            calls = []
            for ptr in _advanced_pointers(node, symtab):
                dist = self._distance_for(ptr)
                if dist is None:
                    continue
                addr = C.BinOp("+", C.Id(ptr), C.IntLit(dist))
                calls.append(C.ExprStmt(C.Call(self.func, [addr])))
            node.body.stmts[0:0] = calls
        return fn
