"""Loop unrolling (paper §2.1, one of the five source-to-source transforms).

Unrolling a canonical loop ``for (v = L; v < U; v += S)`` by factor ``u``
replicates the body ``u`` times, substituting ``v -> v + k*S`` in copy ``k``
and renaming every variable the body declares (so copies do not clash).
The step becomes ``v += u*S``.

When the trip count is not provably divisible by ``u`` a scalar remainder
loop is emitted after the main loop (``assume_divisible=False``); kernel
generation normally guarantees divisibility through the blocking driver and
skips the remainder.
"""

from __future__ import annotations

from typing import List, Optional

from ..poet import cast as C
from ..poet.errors import TransformError
from ..poet.traversal import replace_ids, rewrite
from .base import FreshNames, LoopInfo, Transform, declared_names, loop_info, require_loop


def _rename_decls(stmts: List[C.Node], suffix: str) -> List[C.Node]:
    """Clone ``stmts`` renaming every variable they declare with ``suffix``."""
    mapping = {name: f"{name}{suffix}" for name in declared_names(stmts)}
    out = []
    for s in stmts:
        cloned = replace_ids(s, mapping)

        def fix_decl(n: C.Node):
            if isinstance(n, C.Decl) and n.name in mapping:
                return C.Decl(mapping[n.name], n.ctype, n.init)
            return None

        out.append(rewrite(cloned, fix_decl))
    return out


def unrolled_copies(info: LoopInfo, factor: int, names: Optional[FreshNames] = None):
    """Produce ``factor`` renamed, index-shifted copies of the loop body.

    Returns a list of statement lists.  Copy ``k`` has the induction variable
    replaced by ``v + k*S`` and its declared variables renamed ``name_u<k>``
    (globally unique via ``names``).
    """
    names = names or FreshNames()
    copies = []
    for k in range(factor):
        shift = {info.var: C.add(C.Id(info.var), C.IntLit(k * info.step))} if k else {}
        stmts = []
        for s in info.body.stmts:
            stmts.append(replace_ids(s, shift) if shift else s.clone())
        uid = names.fresh("_u")
        copies.append(_rename_decls(stmts, uid))
    return copies


def _remainder_loop(info: LoopInfo, original_body: List[C.Node]) -> C.For:
    """Scalar loop finishing iterations the unrolled main loop skipped."""
    return C.For(
        None,
        C.BinOp("<", C.Id(info.var), info.upper.clone()),
        C.Assign(C.Id(info.var), "+=", C.IntLit(info.step)),
        C.Block([s.clone() for s in original_body]),
    )


class Unroll(Transform):
    """Unroll the loop over ``var`` by ``factor``."""

    name = "unroll"

    def __init__(self, var: str, factor: int, assume_divisible: bool = True) -> None:
        if factor < 1:
            raise TransformError("unroll factor must be >= 1")
        self.var = var
        self.factor = factor
        self.assume_divisible = assume_divisible

    def apply(self, fn: C.FuncDef) -> C.FuncDef:
        if self.factor == 1:
            return fn
        info = require_loop(fn.body, self.var)
        loop = info.loop
        original_body = [s.clone() for s in info.body.stmts]
        copies = unrolled_copies(info, self.factor)
        new_body = [s for copy in copies for s in copy]
        loop.body = C.Block(new_body)
        loop.step = C.Assign(
            C.Id(info.var), "+=", C.IntLit(self.factor * info.step)
        )
        if not self.assume_divisible:
            # main loop must not overrun: v < U - (u-1)*S
            margin = C.IntLit((self.factor - 1) * info.step)
            loop.cond = C.BinOp(
                "<", C.Id(info.var), C.const_fold(C.BinOp("-", info.upper.clone(), margin))
            )
            remainder = _remainder_loop(info, original_body)
            _insert_after(fn.body, loop, remainder)
        return fn


def _insert_after(root: C.Node, anchor: C.Node, new_stmt: C.Node) -> None:
    """Insert ``new_stmt`` right after ``anchor`` in whatever Block holds it."""
    for n in root.walk():
        if isinstance(n, C.Block):
            for i, s in enumerate(n.stmts):
                if s is anchor:
                    n.stmts.insert(i + 1, new_stmt)
                    return
    raise TransformError("anchor statement not found")


class SplitAccumulator(Transform):
    """Accumulator splitting: break the serial dependence of a reduction.

    After unrolling a reduction loop (e.g. DOT's ``res += X[i]*Y[i]``) the
    body contains ``factor`` updates of the *same* scalar, a serial chain.
    This transform renames the accumulator cyclically across ``ways`` partial
    sums (declared and zero-initialized before the loop) and emits the final
    tree reduction after the loop.  The partial sums then look like the
    distinct ``res_k`` variables of the mmUnrolledCOMP template and vectorize.
    """

    name = "split_accumulator"

    def __init__(self, var: str, acc: str, ways: int) -> None:
        if ways < 1:
            raise TransformError("ways must be >= 1")
        self.var = var
        self.acc = acc
        self.ways = ways

    def apply(self, fn: C.FuncDef) -> C.FuncDef:
        if self.ways == 1:
            return fn
        info = require_loop(fn.body, self.var)
        loop = info.loop
        acc = self.acc
        parts = [f"{acc}_s{k}" for k in range(self.ways)]

        # rename successive updates of acc cyclically
        counter = 0
        for s in loop.body.stmts:
            uses = [n for n in s.walk() if isinstance(n, C.Id) and n.name == acc]
            if not uses:
                continue
            is_update = (
                isinstance(s, C.Assign)
                and isinstance(s.lhs, C.Id)
                and s.lhs.name == acc
            )
            if not is_update:
                raise TransformError(
                    f"accumulator {acc!r} used outside a simple update"
                )
            part = parts[counter % self.ways]
            for n in uses:
                n.name = part
            counter += 1
        if counter == 0:
            raise TransformError(f"no updates of {acc!r} inside loop {self.var!r}")

        # declare partial sums before the loop (after acc's own declaration)
        decl_type = self._acc_type(fn, acc)
        decls = [C.Decl(p, decl_type, C.FloatLit(0.0)) for p in parts]
        block, idx = self._find_stmt(fn.body, loop)
        for d in reversed(decls):
            block.stmts.insert(idx, d)

        # final reduction: acc = acc + p0 + p1 + ...  (tree-shaped pairs)
        red: C.Node = C.Id(parts[0])
        for p in parts[1:]:
            red = C.BinOp("+", red, C.Id(p))
        reduction = C.Assign(C.Id(acc), "+=", red)
        block2, idx2 = self._find_stmt(fn.body, loop)
        block2.stmts.insert(idx2 + 1, reduction)
        return fn

    @staticmethod
    def _acc_type(fn: C.FuncDef, acc: str) -> C.CType:
        for n in fn.body.walk():
            if isinstance(n, C.Decl) and n.name == acc:
                return n.ctype
        for p in fn.params:
            if p.name == acc:
                return p.ctype
        raise TransformError(f"accumulator {acc!r} not declared")

    @staticmethod
    def _find_stmt(root: C.Node, stmt: C.Node):
        for n in root.walk():
            if isinstance(n, C.Block):
                for i, s in enumerate(n.stmts):
                    if s is stmt:
                        return n, i
        raise TransformError("statement not found")
