"""Source-to-source optimizations — the Optimized C Kernel Generator.

The five transformations of paper §2.1 (loop unroll&jam, loop unrolling,
strength reduction, scalar replacement, data prefetching), plus accumulator
splitting (required to vectorize reductions such as DOT), composed by a
parameterized :class:`~repro.transforms.pipeline.OptimizationConfig`.
"""

from .base import FreshNames, LoopInfo, Transform, find_loop, loop_info, require_loop
from .pipeline import OptimizationConfig, build_pipeline, optimize_c_kernel
from .prefetch import PREFETCH_FUNCS, InsertPrefetch
from .scalar_replacement import HoistDecls, ScalarReplace
from .strength_reduction import AffineForm, StrengthReduce, decompose_affine
from .unroll import SplitAccumulator, Unroll
from .unroll_jam import UnrollJam, jam

__all__ = [
    "Transform",
    "LoopInfo",
    "loop_info",
    "find_loop",
    "require_loop",
    "FreshNames",
    "Unroll",
    "SplitAccumulator",
    "UnrollJam",
    "jam",
    "StrengthReduce",
    "decompose_affine",
    "AffineForm",
    "ScalarReplace",
    "HoistDecls",
    "InsertPrefetch",
    "PREFETCH_FUNCS",
    "OptimizationConfig",
    "build_pipeline",
    "optimize_c_kernel",
]
