"""Strength reduction (paper §2.1, §4.1.1).

Array subscripts of the form ``A[c*v + base + k]`` (``v`` the loop variable,
``c``/``base`` loop-invariant, ``k`` a literal) are replaced by references
off a derived pointer that is advanced incrementally:

    double* ptr_A;
    ptr_A = A + base + c*L;          // before the loop (L = lower bound)
    ...   ptr_A[k] ...               // inside the loop
    ptr_A += c*S;                    // at the end of the body

This reproduces the ``ptr_A``/``ptr_B``/``ptr_C0``/``ptr_C1`` pointers of
paper Fig. 13 and removes the per-iteration multiply from the subscript.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..poet import cast as C
from ..poet import to_c
from ..poet.errors import TransformError
from ..poet.symtab import SymbolTable
from .base import FreshNames, Transform, loop_info


@dataclass
class AffineForm:
    """``coeff * var + base + const`` decomposition of an index expression."""

    coeff: Optional[C.Node]  # None when the expression is var-free
    base: Optional[C.Node]  # var-free symbolic part (None if absent)
    const: int


def _expand(e: C.Node) -> C.Node:
    """Distribute multiplication over addition: (l+1)*Mc -> l*Mc + Mc."""
    if isinstance(e, C.BinOp):
        left = _expand(e.left)
        right = _expand(e.right)
        if e.op == "*":
            if isinstance(left, C.BinOp) and left.op in ("+", "-"):
                return _expand(
                    C.BinOp(left.op,
                            C.BinOp("*", left.left, right.clone()),
                            C.BinOp("*", left.right, right.clone()))
                )
            if isinstance(right, C.BinOp) and right.op in ("+", "-"):
                return _expand(
                    C.BinOp(right.op,
                            C.BinOp("*", left.clone(), right.left),
                            C.BinOp("*", left.clone(), right.right))
                )
        return C.BinOp(e.op, left, right)
    return e


def _flatten_sum(e: C.Node, sign: int, terms: List[Tuple[int, C.Node]]) -> None:
    if isinstance(e, C.BinOp) and e.op == "+":
        _flatten_sum(e.left, sign, terms)
        _flatten_sum(e.right, sign, terms)
    elif isinstance(e, C.BinOp) and e.op == "-":
        _flatten_sum(e.left, sign, terms)
        _flatten_sum(e.right, -sign, terms)
    elif isinstance(e, C.UnaryOp) and e.op == "-":
        _flatten_sum(e.operand, -sign, terms)
    else:
        terms.append((sign, e))


def _uses_var(e: C.Node, var: str) -> bool:
    return any(isinstance(n, C.Id) and n.name == var for n in e.walk())


def _term_coeff(term: C.Node, var: str) -> Optional[C.Node]:
    """If ``term`` == c * var (any association), return c; var alone -> 1."""
    if isinstance(term, C.Id) and term.name == var:
        return C.IntLit(1)
    if isinstance(term, C.BinOp) and term.op == "*":
        left_has = _uses_var(term.left, var)
        right_has = _uses_var(term.right, var)
        if left_has and right_has:
            return None
        if left_has:
            inner = _term_coeff(term.left, var)
            return None if inner is None else C.mul(inner, term.right.clone())
        if right_has:
            inner = _term_coeff(term.right, var)
            return None if inner is None else C.mul(term.left.clone(), inner)
    return None


def decompose_affine(idx: C.Node, var: str) -> Optional[AffineForm]:
    """Decompose ``idx`` as ``coeff*var + base + const`` or return None."""
    terms: List[Tuple[int, C.Node]] = []
    _flatten_sum(C.const_fold(_expand(C.const_fold(idx.clone()))), 1, terms)
    coeff: Optional[C.Node] = None
    base: Optional[C.Node] = None
    const = 0
    for sign, t in terms:
        if isinstance(t, C.IntLit):
            const += sign * t.value
            continue
        if _uses_var(t, var):
            c = _term_coeff(t, var)
            if c is None:
                return None  # non-linear in var
            if sign < 0:
                c = C.const_fold(C.UnaryOp("-", c))
            coeff = c if coeff is None else C.add(coeff, c)
            continue
        piece = t.clone() if sign > 0 else C.UnaryOp("-", t.clone())
        base = piece if base is None else C.BinOp("+", base, piece)
    if coeff is not None:
        coeff = C.const_fold(coeff)
    if base is not None:
        base = C.const_fold(base)
    return AffineForm(coeff, base, const)


def _canon(e: Optional[C.Node]) -> str:
    return "" if e is None else to_c(C.const_fold(e.clone()))


@dataclass
class _PtrGroup:
    array: str
    coeff: C.Node
    base: Optional[C.Node]
    refs: List[Tuple[C.Index, int]] = field(default_factory=list)  # (node, const)


class StrengthReduce(Transform):
    """Apply strength reduction to every canonical loop, innermost first.

    :param loops: restrict to these loop variables (None = all canonical loops).
    """

    name = "strength_reduction"

    def __init__(self, loops: Optional[List[str]] = None) -> None:
        self.loops = loops

    def apply(self, fn: C.FuncDef) -> C.FuncDef:
        symtab = SymbolTable.of_function(fn)
        names = FreshNames()
        self._process_block(fn.body, fn, symtab, names)
        return fn

    # innermost-first: recurse before handling each loop
    def _process_block(self, block: C.Block, fn: C.FuncDef,
                       symtab: SymbolTable, names: FreshNames) -> None:
        for i, s in enumerate(list(block.stmts)):
            if isinstance(s, C.For):
                self._process_block(s.body, fn, symtab, names)
                self._reduce_loop(block, s, fn, symtab, names)
            elif isinstance(s, C.If):
                self._process_block(s.then, fn, symtab, names)
                if s.els is not None:
                    self._process_block(s.els, fn, symtab, names)
            elif isinstance(s, C.Block):
                self._process_block(s, fn, symtab, names)

    def _reduce_loop(self, parent: C.Block, loop: C.For, fn: C.FuncDef,
                     symtab: SymbolTable, names: FreshNames) -> None:
        try:
            info = loop_info(loop)
        except TransformError:
            return
        if self.loops is not None and info.var not in self.loops:
            return

        # collect candidate refs directly in this loop body (not nested loops:
        # their refs were handled when the inner loop was processed)
        groups: Dict[Tuple[str, str, str], _PtrGroup] = {}

        def scan(node: C.Node, in_nested_loop: bool) -> None:
            if isinstance(node, C.For) and node is not loop:
                return  # refs inside nested loops use their own pointers
            for child in node.children():
                scan(child, in_nested_loop)
            if isinstance(node, C.Index) and isinstance(node.base, C.Id):
                arr = node.base.name
                if not symtab.is_pointer(arr):
                    return
                form = decompose_affine(node.index, info.var)
                if form is None or form.coeff is None:
                    return  # invariant or non-affine: leave alone
                key = (arr, _canon(form.coeff), _canon(form.base))
                grp = groups.get(key)
                if grp is None:
                    grp = _PtrGroup(arr, form.coeff, form.base)
                    groups[key] = grp
                grp.refs.append((node, form.const))

        for s in loop.body.stmts:
            scan(s, False)

        if not groups:
            return

        idx_in_parent = next(
            i for i, s in enumerate(parent.stmts) if s is loop
        )
        for grp in groups.values():
            ptr_name = names.fresh(f"ptr_{grp.array}")
            while ptr_name in symtab:
                ptr_name = names.fresh(f"ptr_{grp.array}")
            ptr_type = symtab.type_of(grp.array)
            symtab.declare(ptr_name, ptr_type)

            # init: ptr = arr + base + coeff*lower
            init_expr: C.Node = C.Id(grp.array)
            if grp.base is not None:
                init_expr = C.BinOp("+", init_expr, grp.base.clone())
            start = C.mul(grp.coeff.clone(), info.lower.clone())
            if not (isinstance(start, C.IntLit) and start.value == 0):
                init_expr = C.BinOp("+", init_expr, start)
            decl = C.Decl(ptr_name, ptr_type, C.const_fold(init_expr))
            parent.stmts.insert(idx_in_parent, decl)
            idx_in_parent += 1

            # rewrite refs
            for node, const in grp.refs:
                node.base = C.Id(ptr_name)
                node.index = C.IntLit(const)

            # increment at end of body: ptr += coeff*step
            bump = C.const_fold(C.mul(grp.coeff.clone(), C.IntLit(info.step)))
            loop.body.stmts.append(C.Assign(C.Id(ptr_name), "+=", bump))
