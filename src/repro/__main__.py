"""Command-line interface.

Usage::

    python -m repro list-archs
    python -m repro generate gemm --arch haswell -o dgemm.S
    python -m repro generate dot --nu 0 --unroll i=16 --split res=16
    python -m repro validate dgemm.S --kernel gemm
    python -m repro tune axpy --jobs 4
    python -m repro tune gemm --isolation=fork --trial-timeout=30
    python -m repro tune gemm --resume
    python -m repro tune sessions list
    python -m repro tune sessions resume <session-id>
    python -m repro tune sessions gc --max-age-days 7
    python -m repro cache stats
    python -m repro cache scrub --repair
    python -m repro cache gc --max-bytes 512m
    python -m repro serve start
    python -m repro serve status
    python -m repro serve drain
    python -m repro dispatch show
    python -m repro dispatch probe --arch haswell
    python -m repro integrity show
    python -m repro integrity check --threads 2
    python -m repro --trace run.jsonl tune gemm
    python -m repro trace report run.jsonl
    python -m repro bench baseline record
    python -m repro bench baseline check --threshold 0.15
    python -m repro bench baseline record --threads 4 --path results/b4.json
    python -m repro serve start --gemm-threads 4

``generate`` writes (or prints) a complete GAS kernel; ``validate``
parses an emitted ``.S`` file back and checks it against the numpy
reference under the bundled emulator — no toolchain required.
``--trace`` records every pipeline stage, tuning trial, and toolchain
call to a JSONL file that ``trace report`` renders; ``bench baseline``
maintains the per-kernel GFLOPS regression gate (exit 3 on regression).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

from .blas.kernels import KERNEL_SOURCES
from .core.framework import Augem, default_config
from .isa.arch import ALL_ARCHS, detect_host, get_arch
from .transforms.pipeline import OptimizationConfig


def _parse_pairs(values, what):
    """['j=4', 'i=12'] -> (('j', 4), ('i', 12))."""
    out = []
    for v in values or ():
        try:
            var, factor = v.split("=")
            out.append((var.strip(), int(factor)))
        except ValueError:
            raise SystemExit(f"bad --{what} argument {v!r}; expected var=N")
    return tuple(out)


def _build_config(args) -> "OptimizationConfig | None":
    uj = _parse_pairs(args.unroll_jam, "unroll-jam")
    u = _parse_pairs(args.unroll, "unroll")
    split = ()
    if args.split:
        var_factor = _parse_pairs([args.split], "split")[0]
        loop = u[0][0] if u else "i"
        split = ((loop, var_factor[0], var_factor[1]),)
    if not (uj or u or split or args.prefetch is not None):
        return None
    return OptimizationConfig(
        unroll_jam=uj,
        unroll=u,
        split=split,
        prefetch_distance=args.prefetch,
    )


def cmd_list_archs(_args) -> int:
    host = detect_host()
    for name, arch in sorted(ALL_ARCHS.items()):
        marker = "  <- host" if arch is host else ""
        print(f"{name:<14} {arch.description}{marker}")
    return 0


def cmd_generate(args) -> int:
    arch = get_arch(args.arch) if args.arch else detect_host()
    aug = Augem(arch=arch, schedule=not args.no_schedule)
    config = _build_config(args)
    gk = aug.generate_named(args.kernel, config=config,
                            strategy=args.strategy, name=args.name)
    if args.verbose:
        print(gk.describe(), file=sys.stderr)
        print("-- low-level C --", file=sys.stderr)
        print(gk.low_level_c, file=sys.stderr)
    if args.output:
        Path(args.output).write_text(gk.asm_text)
        print(f"wrote {args.output} ({gk.name} for {arch})", file=sys.stderr)
    else:
        print(gk.asm_text)
    return 0


def cmd_validate(args) -> int:
    from .emu.loader import parse_gas_function
    from .emu.run import call_items

    text = Path(args.file).read_text()
    items = parse_gas_function(text)
    rng = np.random.default_rng(0)
    kernel = args.kernel
    if kernel in ("gemm", "gemm_shuf"):
        mc, nc, kc, ldc = args.m or 24, 8, 32, (args.m or 24)
        a = rng.standard_normal(kc * mc)
        b = rng.standard_normal(nc * kc)
        c = np.zeros(ldc * nc)
        call_items(items, [mc, nc, kc, a, b, c, ldc])
        am = a.reshape(kc, mc)
        ref = np.zeros_like(c)
        for j in range(nc):
            col = (b.reshape(nc, kc)[j, :] if kernel == "gemm"
                   else b.reshape(kc, nc)[:, j])
            for i in range(mc):
                ref[j * ldc + i] = am[:, i] @ col
        ok = np.allclose(c, ref)
    elif kernel == "axpy":
        n = args.m or 32
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        ref = y + 1.5 * x
        call_items(items, [n, 1.5, x, y])
        ok = np.allclose(y, ref)
    elif kernel == "dot":
        n = args.m or 32
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        ok = np.isclose(call_items(items, [n, x, y]), x @ y)
    elif kernel == "scal":
        n = args.m or 32
        x = rng.standard_normal(n)
        ref = 2.0 * x
        call_items(items, [n, 2.0, x])
        ok = np.allclose(x, ref)
    elif kernel in ("gemv", "gemv_n"):
        m, n, lda = args.m or 16, 8, 24
        a = rng.standard_normal((n if kernel == "gemv" else m) * lda)
        if kernel == "gemv":
            x = rng.standard_normal(n)
            y = rng.standard_normal(m)
            ref = y + a.reshape(n, lda)[:, :m].T @ x
            call_items(items, [m, n, a, lda, x, y])
        else:
            x = rng.standard_normal(n)
            y = rng.standard_normal(m)
            ref = y + a.reshape(m, lda)[:, :n] @ x
            call_items(items, [m, n, a, lda, x, y])
        ok = np.allclose(y, ref)
    else:
        raise SystemExit(f"unknown kernel family {kernel!r}")
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


def cmd_tune(args) -> int:
    from .backend.compiler import ToolchainUnavailable
    from .tuning.search import EXIT_INTERRUPTED, TuningInterrupted, tune_kernel

    if args.kernel == "sessions":
        return cmd_tune_sessions(args)
    if args.session_action is not None:
        raise SystemExit(
            f"unexpected argument {args.session_action!r} "
            f"(session actions go with 'tune sessions')")
    try:
        result = tune_kernel(
            args.kernel, verbose=args.verbose, jobs=args.jobs,
            reuse=not args.no_reuse,
            isolation=None if args.isolation == "auto" else args.isolation,
            trial_timeout=args.trial_timeout, resume=args.resume)
    except ToolchainUnavailable as exc:
        print(f"tuning unavailable: {exc}", file=sys.stderr)
        return 2
    except TuningInterrupted as exc:
        # the search already sealed its session and narrated the resume
        # hint on stderr; exit distinctly so wrappers can tell "stopped
        # cleanly, resumable" from success and from hard failure
        print(f"interrupted: {exc}", file=sys.stderr)
        return EXIT_INTERRUPTED
    print(result.report())
    return 0


def cmd_tune_sessions(args) -> int:
    """``tune sessions {list,show,resume,gc}`` — manage durable sessions."""
    from .tuning import session as sessions

    action = args.session_action or "list"
    if sessions.sessions_root() is None:
        print("sessions unavailable: persistent cache disabled "
              "(REPRO_CACHE_DIR=off)", file=sys.stderr)
        return 2
    if action == "list":
        found = sessions.list_sessions()
        if not found:
            print("no recorded tuning sessions")
            return 0
        for s in found:
            print(s.describe())
        return 0
    if action == "gc":
        result = sessions.gc_sessions(
            max_age=args.max_age_days * 86400.0,
            include_resumable=args.all)
        print(f"removed {len(result.removed)} session"
              f"{'' if len(result.removed) == 1 else 's'}, "
              f"kept {len(result.kept)}")
        return 0
    if args.session_id is None:
        raise SystemExit(f"'tune sessions {action}' needs a session id")
    session = sessions.get_session(args.session_id)
    if session is None:
        print(f"no session {args.session_id!r}", file=sys.stderr)
        return 2
    if action == "show":
        import json as _json

        print(_json.dumps(session.manifest, indent=2))
        entries = session.journal_entries()
        print(f"journal: {len(entries)} trial"
              f"{'' if len(entries) == 1 else 's'}")
        for rec in entries:
            status = (f"{rec.gflops:7.2f} GF" if rec.gflops >= 0
                      else f"{rec.category}: {rec.error}")
            print(f"  #{rec.index:<3} {rec.candidate:<55s} {status}")
        return 0
    if action == "resume":
        if not session.is_resumable():
            print(f"session {session.id} is {session.status}"
                  f"{' and still live' if session.is_live() else ''}; "
                  f"nothing to resume", file=sys.stderr)
            return 2
        m = session.manifest
        args.kernel = m.get("kernel", "axpy")
        args.resume = True
        args.session_action = None
        return cmd_tune(args)
    raise SystemExit(f"unknown sessions action {action!r}")


def cmd_cache(args) -> int:
    import json as _json

    from .backend import fsio
    from .backend.cache import cache_max_bytes, get_cache, parse_bytes

    cache = get_cache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cache entr{'y' if removed == 1 else 'ies'}"
              f" from {cache.root}" if cache.enabled
              else "cache disabled (REPRO_CACHE_DIR=off); nothing to clear")
        return 0
    if args.action == "scrub":
        from .backend.scrub import (DEFAULT_TMP_AGE, EXIT_CORRUPT,
                                    render_verdict, scrub_store)

        tmp_age = DEFAULT_TMP_AGE if args.tmp_age is None else args.tmp_age
        verdict = scrub_store(cache, repair=args.repair, tmp_age=tmp_age)
        if args.json:
            print(_json.dumps(verdict, indent=2))
        else:
            print(render_verdict(verdict))
        return 0 if verdict["ok"] else EXIT_CORRUPT
    if args.action == "gc":
        budget = (parse_bytes(args.max_bytes) if args.max_bytes is not None
                  else cache_max_bytes())
        if budget is None:
            print("no cache size budget: pass --max-bytes or set "
                  "REPRO_CACHE_MAX_BYTES", file=sys.stderr)
            return 2
        report = cache.gc(max_bytes=budget)
        if args.json:
            print(_json.dumps(report, indent=2))
        else:
            print(f"evicted {report['evicted']} entr"
                  f"{'y' if report['evicted'] == 1 else 'ies'} "
                  f"({report['before_bytes']} -> {report['after_bytes']} "
                  f"bytes, budget {report['budget_bytes']})")
        return 0
    # stats
    from .tuning.session import sessions_inventory

    inv = cache.inventory()
    totals = cache.cumulative_stats()
    sessions = sessions_inventory()
    print(f"cache root:      {inv['root']}")
    print(f"compiled entries: {inv['entries']} ({inv['bytes']} bytes "
          f"on disk)")
    if inv["max_bytes"] is not None:
        print(f"size budget:      {inv['max_bytes']} bytes "
              f"(headroom {inv['headroom_bytes']})")
    print(f"tuning records:   {inv['tuning_records']}")
    print(f"quarantined:      {inv['quarantined']}")
    print(f"sessions:         {sessions['count']} "
          f"({sessions['resumable']} resumable, "
          f"{sessions['journal_bytes']} journal bytes)")
    degraded = fsio.disk_degraded()
    print(f"disk health:      "
          f"{'DEGRADED (' + degraded + ')' if degraded else 'ok'}")
    print(f"cumulative:       {totals.describe()}")
    return 0


def cmd_serve(args) -> int:
    """``serve {start,stop,status,drain,supervise,worker}`` — the
    BLAS-as-a-service daemon (see docs/robustness.md, Service
    resilience)."""
    from .serve import supervisor
    from .serve.server import ServeConfig, default_runtime_dir, run_worker

    runtime_dir = Path(args.runtime_dir) if args.runtime_dir \
        else default_runtime_dir()
    warmup = tuple(w for w in (args.warmup or "gemm").split(",")
                   if w and w != "none")
    config = ServeConfig(
        runtime_dir=runtime_dir,
        socket_path=Path(args.socket) if args.socket else None,
        compute_threads=args.threads,
        gemm_threads=args.gemm_threads,
        queue_capacity=args.queue_capacity,
        max_inflight_per_client=args.max_inflight,
        drain_grace=args.drain_grace,
        warmup=warmup,
        integrity=args.integrity)
    action = args.serve_action
    if action == "start":
        return supervisor.start(config, foreground=args.foreground)
    if action == "supervise":
        return supervisor.supervise(config)
    if action == "worker":
        return run_worker(config)
    if action == "stop":
        return supervisor.stop(config.runtime_dir)
    if action == "status":
        return supervisor.status(config)
    if action == "drain":
        return supervisor.drain(config)
    raise SystemExit(f"unknown serve action {action!r}")


def cmd_integrity(args) -> int:
    """``integrity {show,check}`` — the ABFT verification layer (see
    docs/robustness.md, Integrity)."""
    from .backend.cache import get_cache
    from .blas import integrity as integ

    if args.action == "show":
        mode, period = integ.resolve_integrity()
        sampling = f" (1 in {period} calls)" if mode == "sample" else ""
        print(f"mode:                 {mode}{sampling}")
        print(f"strike limit:         {integ.STRIKE_LIMIT} corruption "
              f"verdicts quarantine a kernel")
        snap = integ.STATS.snapshot()
        for name in integ.IntegrityStats.FIELDS:
            print(f"{name + ':':<22}{snap[name]}")
        strikes = integ.strike_counts()
        if strikes:
            print("strikes (body_hash -> count):")
            for body_hash, count in sorted(strikes.items()):
                print(f"  {body_hash}  {count}")
        inv = get_cache().inventory()
        print(f"quarantined entries:  {inv['quarantined']}")
        return 0

    # check: run the emulated GEMM driver under full verification and
    # compare against numpy.  Honors REPRO_FAULT_INJECT, so
    # `REPRO_FAULT_INJECT=corrupt@#0 python -m repro integrity check`
    # demonstrates detection + containment end to end.
    rng = np.random.default_rng(7)
    m, k, n = 24, 16, 24
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    report = integ.IntegrityReport()
    driver = integ.emulated_gemm_driver(threads=args.threads)
    got = driver(a, b, integrity_report=report)
    correct = bool(np.allclose(got, a @ b, rtol=1e-10, atol=1e-12))
    verdict = report.to_json()
    print(f"checked {verdict['tiles_checked']} tiles: "
          f"{verdict['mismatches']} mismatches, "
          f"{verdict['retries']} retries, "
          f"{verdict['reference_recomputes']} reference recomputes")
    if verdict["quarantined"]:
        print(f"quarantined: {', '.join(verdict['quarantined'])}")
    if not correct:
        print("FAIL: results diverge from numpy despite verification",
              file=sys.stderr)
        return 1
    contained = "corruption detected and contained" \
        if verdict["mismatches"] else "clean"
    print(f"OK: results bit-correct ({contained})")
    return 0


def cmd_dispatch(args) -> int:
    from .blas.dispatch import DispatchChain, tier_verdict

    top = get_arch(args.arch) if args.arch else None
    isolation = None if args.isolation == "auto" else args.isolation
    chain = DispatchChain(top=top, isolation=isolation)

    if args.action == "probe":
        for tier in chain.tiers:
            if not tier.is_reference:
                chain.verify_tier(tier)

    serving = None
    for tier in chain.tiers:
        verdict = tier_verdict(tier)
        if verdict is None:
            status = "unprobed"
        elif verdict[0]:
            status = "VERIFIED"
            serving = serving or tier
        else:
            status = f"DEMOTED ({verdict[1]})"
        print(f"{tier.name:<14} {status:<10}  {tier.describe()}")
    if args.action == "probe":
        print(f"serving tier: {serving.name if serving else 'reference'}")
    else:
        print("(verdicts shown are this process's memoized probes; "
              "run 'dispatch probe' to execute them)")
    return 0


def cmd_trace(args) -> int:
    from .obs.report import TraceError, report_file

    if args.action == "report":
        try:
            print(report_file(args.file))
        except TraceError as exc:
            print(f"bad trace: {exc}", file=sys.stderr)
            return 2
        return 0
    raise SystemExit(f"unknown trace action {args.action!r}")


def cmd_bench(args) -> int:
    from .backend.compiler import ToolchainUnavailable
    from .obs import baseline

    if args.bench_target != "baseline":
        raise SystemExit(f"unknown bench target {args.bench_target!r}")
    try:
        if args.action == "record":
            record = baseline.record_baseline(
                path=args.path, kernels=args.kernels, batches=args.batches,
                threads=args.gemm_threads)
            for kernel, entry in record["kernels"].items():
                print(f"{kernel:<8} {entry['gflops']:>10.2f} GFLOPS")
            axis = (f" (threads={record['threads']})"
                    if "threads" in record else "")
            print(f"recorded baseline for {record['arch']}{axis} "
                  f"-> {args.path}")
            return 0
        rows = baseline.check_baseline(
            path=args.path, batches=args.batches, threshold=args.threshold,
            threads=args.gemm_threads)
        print(baseline.render_check(rows, args.threshold))
        return (baseline.EXIT_REGRESSION
                if any(r.regressed for r in rows) else 0)
    except baseline.BaselineError as exc:
        print(f"baseline: {exc}", file=sys.stderr)
        return 2
    except ToolchainUnavailable as exc:
        print(f"baseline unavailable: {exc}", file=sys.stderr)
        return 2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro",
                                     description=__doc__)
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a JSONL trace of this invocation "
                             "('-' = stderr; see docs/observability.md)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-archs", help="list modelled architectures")

    g = sub.add_parser("generate", help="generate an assembly kernel")
    g.add_argument("kernel", choices=sorted(KERNEL_SOURCES))
    g.add_argument("--arch", choices=sorted(ALL_ARCHS), default=None)
    g.add_argument("--strategy", default="auto",
                   choices=["auto", "vdup", "shuf", "scalar"])
    g.add_argument("--unroll-jam", action="append", metavar="VAR=N",
                   help="unroll&jam factor (repeatable, outermost first)")
    g.add_argument("--unroll", action="append", metavar="VAR=N")
    g.add_argument("--split", metavar="ACC=N",
                   help="accumulator split (DOT-style reductions)")
    g.add_argument("--prefetch", type=int, default=None, metavar="DIST")
    g.add_argument("--no-schedule", action="store_true")
    g.add_argument("--name", default=None, help="exported symbol name")
    g.add_argument("-o", "--output", default=None)
    g.add_argument("-v", "--verbose", action="store_true")

    v = sub.add_parser("validate",
                       help="emulate a generated .S against numpy")
    v.add_argument("file")
    v.add_argument("--kernel", required=True,
                   choices=sorted(KERNEL_SOURCES))
    v.add_argument("--m", type=int, default=None,
                   help="problem size override")

    t = sub.add_parser("tune",
                       help="empirical configuration search "
                            "(or 'tune sessions {list,show,resume,gc}')")
    t.add_argument("kernel",
                   choices=["gemm", "gemv", "axpy", "dot", "sessions"])
    t.add_argument("session_action", nargs="?", default=None,
                   choices=["list", "show", "resume", "gc"],
                   help="with 'tune sessions': manage durable tuning "
                        "sessions")
    t.add_argument("session_id", nargs="?", default=None,
                   help="session id for 'sessions show' / "
                        "'sessions resume'")
    t.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                   help="parallel generate/assemble workers (timing stays "
                        "serial)")
    t.add_argument("--no-reuse", action="store_true",
                   help="ignore persisted tuning measurements")
    t.add_argument("--resume", action="store_true",
                   help="continue the latest interrupted/abandoned session "
                        "for this search: replay its journaled trials and "
                        "pick up where it stopped")
    t.add_argument("--max-age-days", type=float, default=7.0, metavar="D",
                   help="with 'sessions gc': prune sessions idle longer "
                        "than this (default 7 days)")
    t.add_argument("--all", action="store_true",
                   help="with 'sessions gc': also prune resumable "
                        "(interrupted/abandoned) sessions")
    t.add_argument("--isolation", choices=["auto", "fork", "none"],
                   default="auto",
                   help="run each candidate's validation in a sandboxed "
                        "subprocess so crashes/hangs become failed trials "
                        "(auto: fork when the platform supports it)")
    t.add_argument("--trial-timeout", type=float, default=30.0,
                   metavar="SEC",
                   help="wall-clock limit per isolated trial; a candidate "
                        "that exceeds it is killed and quarantined "
                        "(<= 0 disables)")
    t.add_argument("-v", "--verbose", action="store_true")

    c = sub.add_parser("cache",
                       help="inspect, clear, scrub, or garbage-collect "
                            "the kernel cache")
    c.add_argument("action", choices=["stats", "clear", "scrub", "gc"],
                   help="'scrub' re-verifies every persisted artifact "
                        "(exit 5 when unrepaired corruption remains); "
                        "'gc' evicts least-recently-used entries down to "
                        "a size budget (quarantine records are never "
                        "evicted)")
    c.add_argument("--repair", action="store_true",
                   help="with 'scrub': evict what cannot be verified "
                        "instead of only reporting it")
    c.add_argument("--json", action="store_true",
                   help="with 'scrub'/'gc': print the machine-readable "
                        "verdict instead of the human rendering")
    c.add_argument("--max-bytes", default=None, metavar="N",
                   help="with 'gc': the size budget (suffixes k/m/g/t; "
                        "default: $REPRO_CACHE_MAX_BYTES)")
    c.add_argument("--tmp-age", type=float, default=None, metavar="SEC",
                   help="with 'scrub': age before publish scratch counts "
                        "as abandoned (default 3600)")

    s = sub.add_parser("serve",
                       help="run the resilient BLAS service (supervised "
                            "daemon; see docs/robustness.md)")
    s.add_argument("serve_action",
                   choices=["start", "stop", "status", "drain",
                            "supervise", "worker"],
                   help="'start' launches the supervised daemon in the "
                        "background; 'supervise'/'worker' are the "
                        "foreground internals; 'drain' finishes in-flight "
                        "work and exits cleanly")
    s.add_argument("--runtime-dir", default=None, metavar="DIR",
                   help="socket/state directory (default: "
                        "$REPRO_SERVE_DIR, else under the kernel cache)")
    s.add_argument("--socket", default=None, metavar="PATH",
                   help="unix socket path (default: <runtime-dir>/"
                        "serve.sock)")
    s.add_argument("--threads", type=int, default=2, metavar="N",
                   help="compute threads in the worker (default 2)")
    s.add_argument("--gemm-threads", type=int, default=None, metavar="N",
                   help="threads per GEMM call inside the worker "
                        "(default: $REPRO_THREADS, else 1)")
    s.add_argument("--queue-capacity", type=int, default=32, metavar="N",
                   help="bounded admission queue size; beyond it the "
                        "worker answers 'busy' with retry-after "
                        "(default 32)")
    s.add_argument("--max-inflight", type=int, default=8, metavar="N",
                   help="per-client concurrent request quota (default 8)")
    s.add_argument("--drain-grace", type=float, default=30.0,
                   metavar="SEC",
                   help="max seconds a drain waits for in-flight work "
                        "(default 30)")
    s.add_argument("--integrity", default=None, metavar="MODE",
                   help="ABFT verification mode for the worker's drivers "
                        "(off|sample[:K]|full; default: $REPRO_INTEGRITY, "
                        "else off)")
    s.add_argument("--warmup", default="gemm", metavar="LIST",
                   help="comma-separated routine families to build before "
                        "accepting work ('none' to skip; default gemm)")
    s.add_argument("--foreground", action="store_true",
                   help="with 'start': run the supervisor in the "
                        "foreground instead of daemonizing")

    d = sub.add_parser("dispatch",
                       help="inspect the hardened runtime's verified "
                            "capability chain (see docs/robustness.md)")
    d.add_argument("action", choices=["show", "probe"],
                   help="'show' prints the chain; 'probe' also executes "
                        "the sandboxed ISA probe for every native tier")
    d.add_argument("--arch", choices=sorted(ALL_ARCHS), default=None,
                   help="pin the top of the chain (default: detected "
                        "host, honoring $REPRO_FORCE_ARCH)")
    d.add_argument("--isolation", choices=["auto", "fork", "none"],
                   default="auto",
                   help="how probe kernels are executed (auto: fork when "
                        "the platform supports it)")

    it = sub.add_parser("integrity",
                        help="inspect or self-test the ABFT verification "
                             "layer (see docs/robustness.md)")
    it.add_argument("action", choices=["show", "check"],
                    help="'show' prints resolved mode + counters + "
                         "strikes; 'check' runs an emulated GEMM under "
                         "full verification against numpy (honors "
                         "REPRO_FAULT_INJECT)")
    it.add_argument("--threads", type=int, default=2, metavar="N",
                    help="GEMM thread count for 'check' (default 2)")

    tr = sub.add_parser("trace", help="work with recorded JSONL traces")
    tr.add_argument("action", choices=["report"])
    tr.add_argument("file", help="trace file written via --trace/REPRO_TRACE")

    b = sub.add_parser("bench",
                       help="performance baselines (record / regression "
                            "check)")
    b.add_argument("bench_target", choices=["baseline"],
                   metavar="baseline")
    b.add_argument("action", choices=["record", "check"])
    b.add_argument("--path", type=Path, default=None,
                   help="baseline file (default results/baseline.json)")
    b.add_argument("--kernels", nargs="+", metavar="KERNEL",
                   default=None,
                   choices=["gemm", "gemv", "axpy", "dot"],
                   help="kernel families to record (default: all four)")
    b.add_argument("--batches", type=int, default=5, metavar="N",
                   help="timing batches per kernel (best batch wins)")
    b.add_argument("--threshold", type=float, default=None, metavar="FRAC",
                   help="tolerated fractional GFLOPS loss before check "
                        "fails (default 0.15)")
    b.add_argument("--threads", type=int, default=None, metavar="N",
                   dest="gemm_threads",
                   help="record/check gemm through the full parallel "
                        "driver at this thread count (a baseline axis: "
                        "check must match the recording; default: the "
                        "historical micro-kernel workload)")

    args = parser.parse_args(argv)
    if args.trace:
        from .obs import start_trace

        start_trace(args.trace)
    if args.command == "bench":
        from .obs import baseline as _baseline

        if args.path is None:
            args.path = _baseline.DEFAULT_PATH
        if args.kernels is None:
            args.kernels = _baseline.DEFAULT_KERNELS
        if args.threshold is None:
            args.threshold = _baseline.DEFAULT_THRESHOLD
    try:
        return {
            "list-archs": cmd_list_archs,
            "generate": cmd_generate,
            "validate": cmd_validate,
            "tune": cmd_tune,
            "cache": cmd_cache,
            "serve": cmd_serve,
            "dispatch": cmd_dispatch,
            "integrity": cmd_integrity,
            "trace": cmd_trace,
            "bench": cmd_bench,
        }[args.command](args)
    except BrokenPipeError:
        # downstream pager/head closed the pipe; not an error
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
