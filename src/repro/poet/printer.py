"""Pretty-printer: AST -> C source text.

The printer emits compilable C for every node, including the
``TaggedRegion`` wrapper (printed as a commented block, so tagged code is
still inspectable/compilable before template optimization).
"""

from __future__ import annotations

from typing import List

from . import cast as C

_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


def _expr(e: C.Node, parent_prec: int = 0) -> str:
    if isinstance(e, C.Id):
        return e.name
    if isinstance(e, C.IntLit):
        return str(e.value)
    if isinstance(e, C.FloatLit):
        text = repr(e.value)
        return text if ("." in text or "e" in text or "inf" in text or "nan" in text) else text + ".0"
    if isinstance(e, C.BinOp):
        prec = _PREC[e.op]
        s = f"{_expr(e.left, prec)} {e.op} {_expr(e.right, prec + 1)}"
        return f"({s})" if prec < parent_prec else s
    if isinstance(e, C.UnaryOp):
        return f"{e.op}{_expr(e.operand, 11)}"
    if isinstance(e, C.Index):
        return f"{_expr(e.base, 11)}[{_expr(e.index)}]"
    if isinstance(e, C.Call):
        return f"{e.func}({', '.join(_expr(a) for a in e.args)})"
    if isinstance(e, C.Cast):
        return f"({e.ctype}){_expr(e.operand, 11)}"
    raise TypeError(f"not an expression node: {type(e).__name__}")


def _stmt(s: C.Node, out: List[str], indent: int) -> None:
    pad = "    " * indent
    if isinstance(s, C.Decl):
        init = f" = {_expr(s.init)}" if s.init is not None else ""
        out.append(f"{pad}{s.ctype} {s.name}{init};")
    elif isinstance(s, C.Assign):
        out.append(f"{pad}{_expr(s.lhs)} {s.op} {_expr(s.rhs)};")
    elif isinstance(s, C.ExprStmt):
        out.append(f"{pad}{_expr(s.expr)};")
    elif isinstance(s, C.Return):
        out.append(f"{pad}return{' ' + _expr(s.value) if s.value is not None else ''};")
    elif isinstance(s, C.Block):
        out.append(pad + "{")
        for inner in s.stmts:
            _stmt(inner, out, indent + 1)
        out.append(pad + "}")
    elif isinstance(s, C.For):
        init = _inline_stmt(s.init)
        cond = _expr(s.cond) if s.cond is not None else ""
        step = _inline_stmt(s.step)
        out.append(f"{pad}for ({init}; {cond}; {step}) {{")
        for inner in s.body.stmts:
            _stmt(inner, out, indent + 1)
        out.append(pad + "}")
    elif isinstance(s, C.If):
        out.append(f"{pad}if ({_expr(s.cond)}) {{")
        for inner in s.then.stmts:
            _stmt(inner, out, indent + 1)
        if s.els is not None:
            out.append(pad + "} else {")
            for inner in s.els.stmts:
                _stmt(inner, out, indent + 1)
        out.append(pad + "}")
    elif isinstance(s, C.TaggedRegion):
        out.append(f"{pad}/* BEGIN {s.template} */")
        for inner in s.stmts:
            _stmt(inner, out, indent)
        out.append(f"{pad}/* END {s.template} */")
    else:
        raise TypeError(f"not a statement node: {type(s).__name__}")


def _inline_stmt(s) -> str:
    """Render a for-header init/step statement without trailing ';'."""
    if s is None:
        return ""
    tmp: List[str] = []
    _stmt(s, tmp, 0)
    assert len(tmp) == 1
    return tmp[0].rstrip(";")


def to_c(node: C.Node) -> str:
    """Render any AST node to C source text."""
    if isinstance(node, C.Program):
        return "\n\n".join(to_c(f) for f in node.funcs) + "\n"
    if isinstance(node, C.FuncDef):
        params = ", ".join(f"{p.ctype} {p.name}" for p in node.params)
        out = [f"{node.ret_type} {node.name}({params}) {{"]
        for s in node.body.stmts:
            _stmt(s, out, 1)
        out.append("}")
        return "\n".join(out)
    if isinstance(
        node,
        (C.Decl, C.Assign, C.ExprStmt, C.Return, C.Block, C.For, C.If, C.TaggedRegion),
    ):
        out: List[str] = []
        _stmt(node, out, 0)
        return "\n".join(out)
    return _expr(node)
