"""Structural pattern matching over the C AST.

This is the mini-POET feature the Template Identifier is built on (the paper
notes POET "offers built-in pattern matching support for the different types
of AST nodes").

A *pattern* is an ordinary AST fragment in which some positions are
:class:`Bind` placeholders.  ``match(pattern, node)`` returns a binding dict
(pattern-variable name -> matched subtree) or ``None``.  Repeated uses of the
same Bind name must match structurally-equal subtrees.

Example::

    pat = C.Assign(Bind("dst", C.Id), "=", C.Index(Bind("arr", C.Id), Bind("idx")))
    b = match(pat, parse_stmt("tmp0 = ptr_A[4];"))
    # b == {"dst": Id("tmp0"), "arr": Id("ptr_A"), "idx": IntLit(4)}
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Optional

from . import cast as C
from .errors import PatternError


@dataclass
class Bind(C.Node):
    """Pattern placeholder capturing the subtree it matches.

    :param name:  binding name; ``_`` is a non-capturing wildcard.
    :param cls:   if given, the matched node must be an instance of it.
    :param where: optional predicate the matched node must satisfy.
    """

    name: str
    cls: Optional[type] = None
    where: Optional[Callable[[C.Node], bool]] = None


def ast_equal(a, b) -> bool:
    """Structural equality of AST subtrees (or plain field values)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, C.Node):
        for f in fields(a):
            if not ast_equal(getattr(a, f.name), getattr(b, f.name)):
                return False
        return True
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(ast_equal(x, y) for x, y in zip(a, b))
    return a == b


def _match_value(pat, node, binding: dict) -> bool:
    if isinstance(pat, Bind):
        if pat.cls is not None and not isinstance(node, pat.cls):
            return False
        if pat.where is not None and not pat.where(node):
            return False
        if pat.name == "_":
            return True
        if pat.name in binding:
            return ast_equal(binding[pat.name], node)
        binding[pat.name] = node
        return True
    if isinstance(pat, C.Node):
        if type(pat) is not type(node):
            return False
        for f in fields(pat):
            if not _match_value(getattr(pat, f.name), getattr(node, f.name), binding):
                return False
        return True
    if isinstance(pat, (list, tuple)):
        if not isinstance(node, (list, tuple)) or len(pat) != len(node):
            return False
        return all(_match_value(p, x, binding) for p, x in zip(pat, node))
    return pat == node


def match(pattern, node) -> Optional[dict]:
    """Match ``node`` against ``pattern``; return binding dict or None."""
    binding: dict = {}
    return binding if _match_value(pattern, node, binding) else None


def matches(pattern, node) -> bool:
    """True when ``node`` matches ``pattern``."""
    return match(pattern, node) is not None


def find_all(pattern, root: C.Node):
    """Yield ``(node, binding)`` for every descendant matching ``pattern``."""
    for n in root.walk():
        b = match(pattern, n)
        if b is not None:
            yield n, b


def subst(template: C.Node, binding: dict) -> C.Node:
    """Instantiate a pattern/template: replace each Bind (and each ``Id``
    whose name is a binding key) with a clone of its bound subtree."""

    def rep(n):
        if isinstance(n, Bind):
            if n.name not in binding:
                raise PatternError(f"unbound pattern variable {n.name!r}")
            v = binding[n.name]
            return v.clone() if isinstance(v, C.Node) else v
        if isinstance(n, C.Id) and n.name in binding:
            v = binding[n.name]
            if isinstance(v, C.Node):
                return v.clone()
            if isinstance(v, str):
                return C.Id(v)
            if isinstance(v, int):
                return C.IntLit(v)
            if isinstance(v, float):
                return C.FloatLit(v)
            raise PatternError(f"cannot substitute {v!r} for {n.name!r}")
        if isinstance(n, C.Node):
            kwargs = {}
            for f in fields(n):
                v = getattr(n, f.name)
                if isinstance(v, (C.Node, list, tuple)):
                    kwargs[f.name] = _subst_value(v, binding, rep)
                else:
                    kwargs[f.name] = v
            return type(n)(**kwargs)
        return n

    return rep(template)


def _subst_value(v, binding, rep):
    if isinstance(v, C.Node):
        return rep(v)
    if isinstance(v, list):
        return [_subst_value(x, binding, rep) for x in v]
    if isinstance(v, tuple):
        return tuple(_subst_value(x, binding, rep) for x in v)
    return v
