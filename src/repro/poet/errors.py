"""Error types for the mini-POET program-transformation engine."""

from __future__ import annotations


class PoetError(Exception):
    """Base class for every error raised by :mod:`repro.poet`."""


class LexError(PoetError):
    """Raised when the lexer encounters a character it cannot tokenize."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} (line {line}, col {col})")
        self.line = line
        self.col = col


class ParseError(PoetError):
    """Raised when the parser encounters an unexpected token."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        loc = f" (line {line}, col {col})" if line else ""
        super().__init__(f"{message}{loc}")
        self.line = line
        self.col = col


class PatternError(PoetError):
    """Raised for malformed patterns or inconsistent capture bindings."""


class TransformError(PoetError):
    """Raised when a source-to-source transformation cannot be applied."""
