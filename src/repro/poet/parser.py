"""Recursive-descent parser for the C subset used by AUGEM kernels.

Supported grammar (enough for the paper's simple-C kernels and the
low-level C produced by the source-to-source transforms):

- function definitions with scalar / pointer parameters
- declarations with optional initializers (``double* p = A + 4;``)
- ``for`` loops (C89 style: declaration or assignment init), ``if``/``else``,
  ``return``
- assignments (``=``, ``+=``, ``-=``, ``*=``, ``/=``), ``++``/``--``
- expressions: arithmetic, comparison, logical, array subscripts, casts,
  calls, unary ``-``/``*``/``&``
"""

from __future__ import annotations

from typing import List, Optional

from . import cast as C
from .errors import ParseError
from .lexer import Token, tokenize

_TYPE_KWS = ("void", "char", "int", "long", "float", "double")
_QUALIFIERS = ("const", "register", "restrict")


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, source: str) -> None:
        self.toks: List[Token] = tokenize(source)
        self.pos = 0

    # -- token helpers --------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.toks[self.pos]

    def peek(self, offset: int = 1) -> Token:
        j = min(self.pos + offset, len(self.toks) - 1)
        return self.toks[j]

    def advance(self) -> Token:
        t = self.cur
        if t.kind != "eof":
            self.pos += 1
        return t

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        t = self.cur
        return t.kind == kind and (text is None or t.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.at(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {self.cur.text!r}",
                self.cur.line,
                self.cur.col,
            )
        return self.advance()

    # -- types -----------------------------------------------------------
    def at_type(self) -> bool:
        t = self.cur
        return t.kind == "kw" and (t.text in _TYPE_KWS or t.text in _QUALIFIERS)

    def parse_type(self) -> C.CType:
        while self.cur.kind == "kw" and self.cur.text in _QUALIFIERS:
            self.advance()
        base = self.expect("kw").text
        if base not in _TYPE_KWS:
            raise ParseError(f"{base!r} is not a type", self.cur.line, self.cur.col)
        ptr = 0
        while True:
            while self.cur.kind == "kw" and self.cur.text in _QUALIFIERS:
                self.advance()
            if self.accept("op", "*"):
                ptr += 1
            else:
                break
        return C.CType(base, ptr)

    # -- top level ---------------------------------------------------------
    def parse_program(self) -> C.Program:
        funcs = []
        while not self.at("eof"):
            funcs.append(self.parse_funcdef())
        return C.Program(funcs)

    def parse_funcdef(self) -> C.FuncDef:
        ret = self.parse_type()
        name = self.expect("id").text
        self.expect("punct", "(")
        params: list = []
        if not self.at("punct", ")"):
            while True:
                ptype = self.parse_type()
                pname = self.expect("id").text
                params.append(C.Param(pname, ptype))
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        body = self.parse_block()
        return C.FuncDef(name, ret, params, body)

    # -- statements ---------------------------------------------------------
    def parse_block(self) -> C.Block:
        self.expect("punct", "{")
        stmts = []
        while not self.at("punct", "}"):
            stmts.append(self.parse_stmt())
        self.expect("punct", "}")
        return C.Block(stmts)

    def parse_stmt(self) -> C.Node:
        if self.at("punct", "{"):
            return self.parse_block()
        if self.at("kw", "for"):
            return self.parse_for()
        if self.at("kw", "if"):
            return self.parse_if()
        if self.at("kw", "return"):
            self.advance()
            value = None if self.at("punct", ";") else self.parse_expr()
            self.expect("punct", ";")
            return C.Return(value)
        if self.at_type():
            d = self.parse_decl()
            self.expect("punct", ";")
            return d
        s = self.parse_simple_stmt()
        self.expect("punct", ";")
        return s

    def parse_decl(self) -> C.Decl:
        ctype = self.parse_type()
        name = self.expect("id").text
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        return C.Decl(name, ctype, init)

    def parse_for(self) -> C.For:
        self.expect("kw", "for")
        self.expect("punct", "(")
        init: Optional[C.Node] = None
        if not self.at("punct", ";"):
            init = self.parse_decl() if self.at_type() else self.parse_simple_stmt()
        self.expect("punct", ";")
        cond = None if self.at("punct", ";") else self.parse_expr()
        self.expect("punct", ";")
        step = None if self.at("punct", ")") else self.parse_simple_stmt()
        self.expect("punct", ")")
        body = self.parse_stmt()
        if not isinstance(body, C.Block):
            body = C.Block([body])
        return C.For(init, cond, step, body)

    def parse_if(self) -> C.If:
        self.expect("kw", "if")
        self.expect("punct", "(")
        cond = self.parse_expr()
        self.expect("punct", ")")
        then = self.parse_stmt()
        if not isinstance(then, C.Block):
            then = C.Block([then])
        els = None
        if self.accept("kw", "else"):
            e = self.parse_stmt()
            els = e if isinstance(e, C.Block) else C.Block([e])
        return C.If(cond, then, els)

    def parse_simple_stmt(self) -> C.Node:
        """Assignment, ++/--, or bare expression (call)."""
        lhs = self.parse_expr()
        for op in ("=", "+=", "-=", "*=", "/="):
            if self.accept("op", op):
                rhs = self.parse_expr()
                return C.Assign(lhs, op, rhs)
        if self.accept("op", "++"):
            return C.Assign(lhs, "+=", C.IntLit(1))
        if self.accept("op", "--"):
            return C.Assign(lhs, "-=", C.IntLit(1))
        return C.ExprStmt(lhs)

    # -- expressions (precedence climbing) -----------------------------------
    _PREC = {
        "||": 1, "&&": 2,
        "|": 3, "^": 4, "&": 5,
        "==": 6, "!=": 6,
        "<": 7, "<=": 7, ">": 7, ">=": 7,
        "<<": 8, ">>": 8,
        "+": 9, "-": 9,
        "*": 10, "/": 10, "%": 10,
    }

    def parse_expr(self, min_prec: int = 1) -> C.Node:
        left = self.parse_unary()
        while True:
            t = self.cur
            if t.kind != "op" or t.text not in self._PREC:
                break
            prec = self._PREC[t.text]
            if prec < min_prec:
                break
            self.advance()
            right = self.parse_expr(prec + 1)
            left = C.BinOp(t.text, left, right)
        return left

    def parse_unary(self) -> C.Node:
        if self.at("op", "-"):
            self.advance()
            operand = self.parse_unary()
            if isinstance(operand, C.IntLit):
                return C.IntLit(-operand.value)
            if isinstance(operand, C.FloatLit):
                return C.FloatLit(-operand.value)
            return C.UnaryOp("-", operand)
        for op in ("!", "*", "&", "~"):
            if self.at("op", op):
                self.advance()
                return C.UnaryOp(op, self.parse_unary())
        # cast: '(' type ... ')'
        if self.at("punct", "(") and self.peek().kind == "kw" and self.peek().text in _TYPE_KWS:
            self.advance()
            ctype = self.parse_type()
            self.expect("punct", ")")
            return C.Cast(ctype, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> C.Node:
        e = self.parse_primary()
        while True:
            if self.accept("punct", "["):
                idx = self.parse_expr()
                self.expect("punct", "]")
                e = C.Index(e, idx)
            elif self.at("punct", "(") and isinstance(e, C.Id):
                self.advance()
                args = []
                if not self.at("punct", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept("punct", ","):
                            break
                self.expect("punct", ")")
                e = C.Call(e.name, args)
            else:
                return e

    def parse_primary(self) -> C.Node:
        t = self.cur
        if t.kind == "int":
            self.advance()
            return C.IntLit(int(t.text, 0))
        if t.kind == "float":
            self.advance()
            return C.FloatLit(float(t.text))
        if t.kind == "id":
            self.advance()
            return C.Id(t.text)
        if self.accept("punct", "("):
            e = self.parse_expr()
            self.expect("punct", ")")
            return e
        raise ParseError(f"unexpected token {t.text!r}", t.line, t.col)


def parse_program(source: str) -> C.Program:
    """Parse a translation unit (one or more function definitions)."""
    return Parser(source).parse_program()


def parse_function(source: str) -> C.FuncDef:
    """Parse a source containing exactly one function definition."""
    prog = parse_program(source)
    if len(prog.funcs) != 1:
        raise ParseError(f"expected 1 function, found {len(prog.funcs)}")
    return prog.funcs[0]


def parse_stmt(source: str) -> C.Node:
    """Parse a single statement (useful in tests and pattern building)."""
    p = Parser(source)
    s = p.parse_stmt()
    if not p.at("eof"):
        raise ParseError("trailing input after statement", p.cur.line, p.cur.col)
    return s


def parse_expr(source: str) -> C.Node:
    """Parse a single expression."""
    p = Parser(source)
    e = p.parse_expr()
    if not p.at("eof"):
        raise ParseError("trailing input after expression", p.cur.line, p.cur.col)
    return e
