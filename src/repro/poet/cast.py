"""Typed AST for the C subset handled by the mini-POET engine.

The AUGEM pipeline operates on *simple C* kernels (paper Figs. 12, 15, 16,
17) and on the *low-level C* produced by the source-to-source transforms.
This module defines the node types shared by the lexer/parser, the
pretty-printer, the pattern matcher, and every transformation.

Nodes are small frozen-ish dataclasses (mutable on purpose: rewriters build
new trees, but a few passes annotate nodes in place).  Every node supports
``children()``, structural equality, and ``clone()`` (deep copy).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, fields
from typing import Iterator, Optional, Sequence, Union


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

_BASE_TYPES = ("void", "char", "int", "long", "float", "double")


@dataclass(eq=True)
class CType:
    """A C type: a base type plus a pointer depth (``double*`` etc.)."""

    base: str
    ptr: int = 0

    def __post_init__(self) -> None:
        if self.base not in _BASE_TYPES:
            raise ValueError(f"unsupported base type: {self.base!r}")
        if self.ptr < 0:
            raise ValueError("pointer depth must be >= 0")

    # -- convenience ---------------------------------------------------
    @property
    def is_pointer(self) -> bool:
        return self.ptr > 0

    @property
    def is_float(self) -> bool:
        return self.ptr == 0 and self.base in ("float", "double")

    @property
    def is_integer(self) -> bool:
        return self.ptr == 0 and self.base in ("char", "int", "long")

    def pointee(self) -> "CType":
        if not self.is_pointer:
            raise ValueError(f"{self} is not a pointer type")
        return CType(self.base, self.ptr - 1)

    def pointer_to(self) -> "CType":
        return CType(self.base, self.ptr + 1)

    @property
    def sizeof(self) -> int:
        """Size in bytes (LP64 model)."""
        if self.ptr:
            return 8
        return {"void": 1, "char": 1, "int": 4, "long": 8,
                "float": 4, "double": 8}[self.base]

    def __str__(self) -> str:  # C syntax
        return self.base + "*" * self.ptr

    def __hash__(self) -> int:
        return hash((self.base, self.ptr))


DOUBLE = CType("double")
FLOAT = CType("float")
INT = CType("int")
LONG = CType("long")
VOID = CType("void")
DOUBLE_P = CType("double", 1)
FLOAT_P = CType("float", 1)


# ---------------------------------------------------------------------------
# Base node
# ---------------------------------------------------------------------------


@dataclass
class Node:
    """Base class of every AST node."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (skips None / non-node fields)."""
        for f in fields(self):
            v = getattr(self, f.name)
            if isinstance(v, Node):
                yield v
            elif isinstance(v, (list, tuple)):
                for item in v:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for c in self.children():
            yield from c.walk()

    def clone(self) -> "Node":
        """Deep copy of the subtree."""
        return copy.deepcopy(self)

    # Printed form doubles as a readable repr for debugging/tests.
    def __str__(self) -> str:
        from .printer import to_c

        return to_c(self)


Expr = Node  # semantic aliases used in annotations below
Stmt = Node


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Id(Node):
    """A variable reference."""

    name: str


@dataclass
class IntLit(Node):
    """Integer literal."""

    value: int


@dataclass
class FloatLit(Node):
    """Floating-point literal."""

    value: float


@dataclass
class BinOp(Node):
    """Binary expression ``left op right``; op in + - * / % << >> < <= > >= == !=."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Node):
    """Unary expression; op in ``- ! * &``."""

    op: str
    operand: Expr


@dataclass
class Index(Node):
    """Array subscript ``base[index]``."""

    base: Expr
    index: Expr


@dataclass
class Call(Node):
    """Function (or intrinsic) call.  AUGEM uses ``prefetch*(addr)``."""

    func: str
    args: list = field(default_factory=list)


@dataclass
class Cast(Node):
    """C cast ``(type) expr``."""

    ctype: CType
    operand: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Assign(Node):
    """Assignment statement ``lhs op rhs``; op in = += -= *=."""

    lhs: Expr
    op: str
    rhs: Expr


@dataclass
class Decl(Node):
    """Declaration ``type name [= init];``."""

    name: str
    ctype: CType
    init: Optional[Expr] = None


@dataclass
class ExprStmt(Node):
    """Expression used as a statement (e.g. a call, ``ptr++``)."""

    expr: Expr


@dataclass
class Block(Node):
    """A ``{ ... }`` statement list."""

    stmts: list = field(default_factory=list)


@dataclass
class For(Node):
    """A C for-loop.  ``init``/``step`` are statements (or None); ``cond`` an expr."""

    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Stmt]
    body: Block


@dataclass
class If(Node):
    cond: Expr
    then: Block
    els: Optional[Block] = None


@dataclass
class Return(Node):
    value: Optional[Expr] = None


@dataclass
class Param(Node):
    name: str
    ctype: CType


@dataclass
class FuncDef(Node):
    """A function definition."""

    name: str
    ret_type: CType
    params: list
    body: Block


@dataclass
class Program(Node):
    """A translation unit: a list of function definitions."""

    funcs: list = field(default_factory=list)

    def func(self, name: str) -> FuncDef:
        for f in self.funcs:
            if f.name == name:
                return f
        raise KeyError(f"no function named {name!r}")


# ---------------------------------------------------------------------------
# Region annotation (attached by the Template Identifier)
# ---------------------------------------------------------------------------


@dataclass
class TaggedRegion(Node):
    """A statement region tagged with a matching template annotation.

    The Template Identifier replaces the matched statement run with one of
    these; the Template Optimizer dispatches on ``template`` (paper Fig. 2:
    ``r_annot = template_annotation(r)``).
    """

    template: str  # template name, e.g. "mmUnrolledCOMP"
    stmts: list  # the original low-level C statements
    binding: dict = field(default_factory=dict)  # template parameters
    live_out: frozenset = frozenset()  # scalars live after the region


# ---------------------------------------------------------------------------
# Helpers used throughout the code base
# ---------------------------------------------------------------------------


def const_fold(e: Expr) -> Expr:
    """Fold integer-constant arithmetic; returns a new (or the same) expr."""
    if isinstance(e, BinOp):
        left = const_fold(e.left)
        right = const_fold(e.right)
        if isinstance(left, IntLit) and isinstance(right, IntLit):
            a, b = left.value, right.value
            table = {
                "+": lambda: a + b,
                "-": lambda: a - b,
                "*": lambda: a * b,
                "/": lambda: a // b if b else None,
                "%": lambda: a % b if b else None,
                "<<": lambda: a << b,
                ">>": lambda: a >> b,
            }
            if e.op in table:
                v = table[e.op]()
                if v is not None:
                    return IntLit(v)
        # identity simplifications
        if e.op == "+" and isinstance(right, IntLit) and right.value == 0:
            return left
        if e.op == "+" and isinstance(left, IntLit) and left.value == 0:
            return right
        if e.op == "-" and isinstance(right, IntLit) and right.value == 0:
            return left
        if e.op == "*" and isinstance(right, IntLit) and right.value == 1:
            return left
        if e.op == "*" and isinstance(left, IntLit) and left.value == 1:
            return right
        if e.op == "*" and (
            (isinstance(right, IntLit) and right.value == 0)
            or (isinstance(left, IntLit) and left.value == 0)
        ):
            return IntLit(0)
        return BinOp(e.op, left, right)
    if isinstance(e, UnaryOp):
        operand = const_fold(e.operand)
        if e.op == "-" and isinstance(operand, IntLit):
            return IntLit(-operand.value)
        return UnaryOp(e.op, operand)
    if isinstance(e, Index):
        return Index(const_fold(e.base), const_fold(e.index))
    return e


def add(a: Expr, b: Expr) -> Expr:
    return const_fold(BinOp("+", a, b))


def mul(a: Expr, b: Expr) -> Expr:
    return const_fold(BinOp("*", a, b))


def ident_names(e: Node) -> set:
    """Set of identifier names referenced anywhere under ``e``."""
    return {n.name for n in e.walk() if isinstance(n, Id)}
