"""Tokenizer for the C subset accepted by the mini-POET parser."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .errors import LexError

KEYWORDS = frozenset(
    {"void", "char", "int", "long", "float", "double", "for", "if", "else",
     "return", "while", "const", "register", "restrict"}
)

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=",
    "+=", "-=", "*=", "/=", "%=", "==", "!=", "<=", ">=", "&&", "||",
    "<<", ">>", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~", "?",
]

_PUNCT = "()[]{};,"


@dataclass(frozen=True)
class Token:
    kind: str  # 'id' | 'int' | 'float' | 'op' | 'punct' | 'kw' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; returns a list ending with an ``eof`` token.

    Handles ``//`` and ``/* */`` comments, decimal/hex integers, and C
    floating literals (including exponents and the ``f`` suffix, which is
    dropped).
    """
    toks: List[Token] = []
    i, line, col = 0, 1, 1
    n = len(source)

    def err(msg: str) -> LexError:
        return LexError(msg, line, col)

    while i < n:
        c = source[i]
        # whitespace
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # comments
        if source.startswith("//", i):
            j = source.find("\n", i)
            i = n if j < 0 else j
            continue
        if source.startswith("/*", i):
            j = source.find("*/", i + 2)
            if j < 0:
                raise err("unterminated block comment")
            for k in range(i, j + 2):
                if source[k] == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = j + 2
            continue
        # identifiers / keywords
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "id"
            toks.append(Token(kind, text, line, col))
            col += j - i
            i = j
            continue
        # numbers
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and (source[j].isdigit() or source[j].lower() in "abcdef"):
                    j += 1
                toks.append(Token("int", source[i:j], line, col))
                col += j - i
                i = j
                continue
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == ".":
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            text = source[i:j]
            if j < n and source[j] in "fF" and is_float:
                j += 1  # drop the suffix
            elif j < n and source[j] in "lLuU" and not is_float:
                j += 1  # drop integer suffix
            toks.append(Token("float" if is_float else "int", text, line, col))
            col += j - i
            i = j
            continue
        # punctuation
        if c in _PUNCT:
            toks.append(Token("punct", c, line, col))
            i += 1
            col += 1
            continue
        # operators
        for op in _OPERATORS:
            if source.startswith(op, i):
                toks.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise err(f"unexpected character {c!r}")
    toks.append(Token("eof", "", line, col))
    return toks


def token_stream(source: str) -> Iterator[Token]:
    """Iterator form of :func:`tokenize`."""
    yield from tokenize(source)
