"""Generic AST visitors and rewriters."""

from __future__ import annotations

from dataclasses import fields
from typing import Callable, Optional

from . import cast as C


class NodeVisitor:
    """Pre-order visitor dispatching on ``visit_<ClassName>`` methods."""

    def visit(self, node: C.Node):
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            result = method(node)
            if result is not None:
                return result
        return self.generic_visit(node)

    def generic_visit(self, node: C.Node):
        for child in node.children():
            self.visit(child)
        return None


class NodeTransformer:
    """Bottom-up rewriter.

    Subclasses define ``visit_<ClassName>(node) -> node | list | None``:

    - return a node to replace the original,
    - return ``None`` to keep the (child-rewritten) node,
    - for statements inside a list context, return a list to splice, or
      the sentinel :data:`DELETE` to remove the statement.
    """

    DELETE = object()

    def transform(self, node: C.Node) -> C.Node:
        node = self._rewrite_children(node)
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            result = method(node)
            if result is not None:
                return result
        return node

    def _rewrite_children(self, node: C.Node) -> C.Node:
        for f in fields(node):
            v = getattr(node, f.name)
            if isinstance(v, C.Node):
                setattr(node, f.name, self.transform(v))
            elif isinstance(v, list):
                new_list = []
                for item in v:
                    if isinstance(item, C.Node):
                        r = self.transform(item)
                        if r is NodeTransformer.DELETE:
                            continue
                        if isinstance(r, list):
                            new_list.extend(r)
                        else:
                            new_list.append(r)
                    else:
                        new_list.append(item)
                setattr(node, f.name, new_list)
        return node


def rewrite(node: C.Node, fn: Callable[[C.Node], Optional[C.Node]]) -> C.Node:
    """Functional bottom-up rewrite: ``fn`` returns a replacement or None."""

    class _F(NodeTransformer):
        def transform(self, n: C.Node) -> C.Node:
            n = self._rewrite_children(n)
            r = fn(n)
            return n if r is None else r

    return _F().transform(node)


def replace_ids(node: C.Node, mapping: dict) -> C.Node:
    """Clone ``node`` substituting identifiers by name.

    Values may be strings (renames) or expression nodes.
    """
    cloned = node.clone()

    def fn(n: C.Node):
        if isinstance(n, C.Id) and n.name in mapping:
            v = mapping[n.name]
            return C.Id(v) if isinstance(v, str) else v.clone()
        return None

    return rewrite(cloned, fn)


def stmt_lists(root: C.Node):
    """Yield every statement list (``Block.stmts``) under ``root``,
    innermost first — the order template identification scans them."""
    collected = []

    def walk(n: C.Node):
        for c in n.children():
            walk(c)
        if isinstance(n, C.Block):
            collected.append(n.stmts)

    walk(root)
    yield from collected


def count_nodes(root: C.Node, cls: type = C.Node) -> int:
    """Number of descendants (inclusive) that are instances of ``cls``."""
    return sum(1 for n in root.walk() if isinstance(n, cls))
