"""Mini-POET: the program-transformation substrate of the AUGEM reproduction.

The original AUGEM framework is implemented in POET, "an interpreted program
transformation language designed to support programmable control and
parameterization of compiler optimizations" (Yi, 2012).  This package is a
small Python reimplementation of the POET facilities AUGEM relies on:

- a C-subset lexer and recursive-descent parser (:mod:`.lexer`, :mod:`.parser`)
- a typed AST (:mod:`.cast`) with a pretty-printer back to C (:mod:`.printer`)
- structural pattern matching with capture bindings (:mod:`.pattern`)
- generic traversals/rewriters (:mod:`.traversal`) and a symbol table
  (:mod:`.symtab`)
"""

from . import cast
from .errors import LexError, ParseError, PatternError, PoetError, TransformError
from .lexer import Token, tokenize
from .parser import parse_expr, parse_function, parse_program, parse_stmt
from .pattern import Bind, ast_equal, find_all, match, matches, subst
from .printer import to_c
from .symtab import SymbolTable
from .traversal import (
    NodeTransformer,
    NodeVisitor,
    count_nodes,
    replace_ids,
    rewrite,
    stmt_lists,
)

__all__ = [
    "cast",
    "tokenize",
    "Token",
    "parse_program",
    "parse_function",
    "parse_stmt",
    "parse_expr",
    "to_c",
    "Bind",
    "match",
    "matches",
    "find_all",
    "subst",
    "ast_equal",
    "SymbolTable",
    "NodeVisitor",
    "NodeTransformer",
    "rewrite",
    "replace_ids",
    "stmt_lists",
    "count_nodes",
    "PoetError",
    "LexError",
    "ParseError",
    "PatternError",
    "TransformError",
]
