"""Symbol table: name -> CType, built from a FuncDef.

Used by the transforms (to know which identifiers are pointers/floats),
by the Template Identifier (template parameters are classified as array
vs. integer vs. float variables), and by the Assembly Kernel Generator.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from . import cast as C
from .errors import PoetError


class SymbolTable:
    """Flat symbol table for a single function.

    The C subset AUGEM operates on declares every variable at function or
    loop scope with unique names (the transforms generate fresh names), so a
    flat map is sufficient; redeclaration with a *different* type is an
    error, while an identical redeclaration is tolerated.
    """

    def __init__(self) -> None:
        self._types: Dict[str, C.CType] = {}
        self.params: list = []

    # -- construction ----------------------------------------------------
    @classmethod
    def of_function(cls, fn: C.FuncDef) -> "SymbolTable":
        st = cls()
        for p in fn.params:
            st.declare(p.name, p.ctype)
            st.params.append(p.name)
        for node in fn.body.walk():
            if isinstance(node, C.Decl):
                st.declare(node.name, node.ctype)
            elif isinstance(node, C.TaggedRegion):
                for s in node.stmts:
                    for inner in s.walk():
                        if isinstance(inner, C.Decl):
                            st.declare(inner.name, inner.ctype)
        return st

    def declare(self, name: str, ctype: C.CType) -> None:
        old = self._types.get(name)
        if old is not None and old != ctype:
            raise PoetError(f"conflicting declaration of {name!r}: {old} vs {ctype}")
        self._types[name] = ctype

    # -- queries -----------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[str]:
        return iter(self._types)

    def type_of(self, name: str) -> C.CType:
        try:
            return self._types[name]
        except KeyError:
            raise PoetError(f"undeclared identifier {name!r}") from None

    def get(self, name: str) -> Optional[C.CType]:
        return self._types.get(name)

    def is_pointer(self, name: str) -> bool:
        t = self.get(name)
        return t is not None and t.is_pointer

    def is_float_scalar(self, name: str) -> bool:
        t = self.get(name)
        return t is not None and t.is_float

    def is_integer(self, name: str) -> bool:
        t = self.get(name)
        return t is not None and t.is_integer

    def pointers(self) -> list:
        return [n for n, t in self._types.items() if t.is_pointer]

    def fresh(self, prefix: str) -> str:
        """Return an undeclared name with the given prefix."""
        if prefix not in self._types:
            return prefix
        i = 0
        while f"{prefix}_{i}" in self._types:
            i += 1
        return f"{prefix}_{i}"

    def expr_type(self, e: C.Node) -> C.CType:
        """Infer the type of an expression (LP64 usual-arithmetic rules,
        simplified to the subset we generate)."""
        if isinstance(e, C.Id):
            return self.type_of(e.name)
        if isinstance(e, C.IntLit):
            return C.LONG
        if isinstance(e, C.FloatLit):
            return C.DOUBLE
        if isinstance(e, C.Cast):
            return e.ctype
        if isinstance(e, C.Index):
            return self.expr_type(e.base).pointee()
        if isinstance(e, C.UnaryOp):
            if e.op == "*":
                return self.expr_type(e.operand).pointee()
            if e.op == "&":
                return self.expr_type(e.operand).pointer_to()
            return self.expr_type(e.operand)
        if isinstance(e, C.BinOp):
            lt = self.expr_type(e.left)
            rt = self.expr_type(e.right)
            if e.op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
                return C.INT
            # pointer arithmetic keeps the pointer type
            if lt.is_pointer:
                return lt
            if rt.is_pointer:
                return rt
            if lt.base == "double" or rt.base == "double":
                return C.DOUBLE
            if lt.base == "float" or rt.base == "float":
                return C.FLOAT
            return C.LONG
        if isinstance(e, C.Call):
            return C.VOID
        raise PoetError(f"cannot type expression {type(e).__name__}")
